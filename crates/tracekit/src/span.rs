//! Span identity, stage vocabulary, and the span record.
//!
//! A *span* is one interval of simulated time attributed to one stage of one
//! request. Spans form a tree per trace: the root span covers the whole
//! request (issue to quorum ack), children cover individual pipeline steps
//! (a DMA leg, an engine job, a disk append). Identity is plain integers so
//! that a trace serializes byte-identically across runs of the same seed.

use simkit::Time;

/// Identifies one sampled request's span tree.
///
/// `0` is the null trace (not sampled — all span calls become no-ops) and
/// `1` is reserved for maintenance work not tied to any request (scrubs,
/// fault-plan bookkeeping). Request traces are derived from the request's
/// issue ordinal, so the same seed always yields the same trace ids.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct TraceId(pub u64);

impl TraceId {
    /// The null trace: spans opened against it are discarded.
    pub const NULL: TraceId = TraceId(0);
    /// The maintenance trace for work not attributable to a request.
    pub const MAINT: TraceId = TraceId(1);

    /// Whether this is the null (unsampled) trace.
    pub fn is_null(self) -> bool {
        self.0 == 0
    }
}

/// Identifies one span within a [`Tracer`](crate::Tracer).
///
/// Ids are allocated sequentially per tracer; `0` is the null span, returned
/// by `span_open` when the trace is unsampled so call sites never branch.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct SpanId(pub u64);

impl SpanId {
    /// The null span: closing or annotating it is a no-op.
    pub const NULL: SpanId = SpanId(0);

    /// Whether this is the null span.
    pub fn is_null(self) -> bool {
        self.0 == 0
    }
}

/// What a span's interval was spent on.
///
/// The first [`SEGMENT_COUNT`](StageKind::SEGMENT_COUNT) variants are the
/// *latency segments*: consecutive milestones that exactly partition a write
/// request's issue-to-ack latency (see [`SegmentAccum`](crate::SegmentAccum)).
/// The rest label resource occupancy, lifecycle events, and functional steps.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum StageKind {
    // -- latency segments (paper-figure breakdown; order matters) ----------
    /// Issue (or retry backoff expiry) until the payload is on the NIC.
    Ingress,
    /// Header parse: NIC ingress until the verb is understood.
    Parse,
    /// Compression: parse done until the compressed block exists.
    Compress,
    /// Replication fan-out until the last tracked milestone before ack.
    Replicate,
    /// Post-verb/ack tail: last milestone until quorum completion.
    Ack,
    // -- request lifecycle -------------------------------------------------
    /// Root span of one request, issue to completion.
    Request,
    /// A retry was scheduled after an aborted or failed attempt.
    Retry,
    /// The request timer fired before quorum was reached.
    Timeout,
    /// The quorum was explicitly abandoned for this attempt.
    Abort,
    // -- resource occupancy ------------------------------------------------
    /// Ethernet/RDMA wire transfer.
    Wire,
    /// NIC-attached DMA engine transfer.
    NicDma,
    /// Device-to-host or host-to-device PCIe DMA.
    DevDma,
    /// Host DRAM read/write.
    HostMem,
    /// On-NIC HBM read/write.
    Hbm,
    /// SmartNIC device DRAM read/write.
    DevMem,
    /// A job occupying a host/Arm CPU core.
    CpuJob,
    /// A job occupying the FPGA (de)compression engine.
    EngineJob,
    /// An NVMe disk I/O on a storage server.
    DiskIo,
    /// Fixed propagation/pipeline-fill delay.
    Propagation,
    // -- functional steps --------------------------------------------------
    /// AAMS message split (header/payload placement decision).
    Split,
    /// AAMS message assemble from host+device halves.
    Assemble,
    /// Replica append on a storage server.
    Append,
    /// Replica write redirected away from a dead server.
    Failover,
    /// A replica ack counted toward the write quorum.
    QuorumAck,
    /// A background scrub pass repairing replicas.
    Scrub,
    /// An RC data packet left the sender.
    RcTx,
    /// An RC data packet arrived at the receiver.
    RcRx,
    /// Content-defined-chunking dedup scan over a payload.
    Dedup,
    /// XTS encryption or decryption of a sealed segment.
    Encrypt,
    /// Hot-block cache probe at the middle tier.
    Cache,
    /// A speculative prefetch fetch issued on a read miss.
    Prefetch,
}

impl StageKind {
    /// Number of latency segments at the front of [`StageKind::ALL`].
    pub const SEGMENT_COUNT: usize = 5;

    /// The latency segments, in pipeline order.
    pub const SEGMENTS: [StageKind; StageKind::SEGMENT_COUNT] = [
        StageKind::Ingress,
        StageKind::Parse,
        StageKind::Compress,
        StageKind::Replicate,
        StageKind::Ack,
    ];

    /// Every stage kind, in declaration order. Breakdown tables index by
    /// position in this array.
    pub const ALL: [StageKind; 31] = [
        StageKind::Ingress,
        StageKind::Parse,
        StageKind::Compress,
        StageKind::Replicate,
        StageKind::Ack,
        StageKind::Request,
        StageKind::Retry,
        StageKind::Timeout,
        StageKind::Abort,
        StageKind::Wire,
        StageKind::NicDma,
        StageKind::DevDma,
        StageKind::HostMem,
        StageKind::Hbm,
        StageKind::DevMem,
        StageKind::CpuJob,
        StageKind::EngineJob,
        StageKind::DiskIo,
        StageKind::Propagation,
        StageKind::Split,
        StageKind::Assemble,
        StageKind::Append,
        StageKind::Failover,
        StageKind::QuorumAck,
        StageKind::Scrub,
        StageKind::RcTx,
        StageKind::RcRx,
        StageKind::Dedup,
        StageKind::Encrypt,
        StageKind::Cache,
        StageKind::Prefetch,
    ];

    /// Position of this kind in [`StageKind::ALL`].
    pub fn index(self) -> usize {
        let mut i = 0;
        while i < StageKind::ALL.len() {
            if StageKind::ALL[i] == self {
                return i;
            }
            i += 1;
        }
        0
    }

    /// Position among the latency segments, if this kind is one.
    pub fn segment_index(self) -> Option<usize> {
        let i = self.index();
        if i < StageKind::SEGMENT_COUNT {
            Some(i)
        } else {
            None
        }
    }

    /// Stable kebab-case name used as the Chrome trace category and in
    /// breakdown tables.
    pub fn name(self) -> &'static str {
        match self {
            StageKind::Ingress => "ingress",
            StageKind::Parse => "parse",
            StageKind::Compress => "compress",
            StageKind::Replicate => "replicate",
            StageKind::Ack => "ack",
            StageKind::Request => "request",
            StageKind::Retry => "retry",
            StageKind::Timeout => "timeout",
            StageKind::Abort => "abort",
            StageKind::Wire => "wire",
            StageKind::NicDma => "nic-dma",
            StageKind::DevDma => "dev-dma",
            StageKind::HostMem => "host-mem",
            StageKind::Hbm => "hbm",
            StageKind::DevMem => "dev-mem",
            StageKind::CpuJob => "cpu-job",
            StageKind::EngineJob => "engine-job",
            StageKind::DiskIo => "disk-io",
            StageKind::Propagation => "propagation",
            StageKind::Split => "split",
            StageKind::Assemble => "assemble",
            StageKind::Append => "append",
            StageKind::Failover => "failover",
            StageKind::QuorumAck => "quorum-ack",
            StageKind::Scrub => "scrub",
            StageKind::RcTx => "rc-tx",
            StageKind::RcRx => "rc-rx",
            StageKind::Dedup => "dedup",
            StageKind::Encrypt => "encrypt",
            StageKind::Cache => "cache",
            StageKind::Prefetch => "prefetch",
        }
    }
}

/// One closed span: an interval of simulated time attributed to a stage.
#[derive(Clone, Debug, PartialEq)]
pub struct Span {
    /// The trace (request) this span belongs to.
    pub trace: TraceId,
    /// This span's id, unique within the tracer.
    pub id: SpanId,
    /// Enclosing span, or [`SpanId::NULL`] for a root.
    pub parent: SpanId,
    /// What the interval was spent on.
    pub kind: StageKind,
    /// Human-readable site label (`"dma-h2d"`, `"lz4-engine"`, ...).
    pub label: &'static str,
    /// Simulated open time.
    pub open: Time,
    /// Simulated close time (`>= open`).
    pub close: Time,
    /// Payload bytes the span moved or processed (0 when not applicable).
    pub bytes: u64,
    /// Queue depth observed at open (jobs ahead of this one), when known.
    pub queue: u32,
    /// Free-form annotations added while the span was open.
    pub notes: Vec<&'static str>,
    /// Fault-injection events whose timestamp falls inside the span.
    pub faults: Vec<String>,
}

/// Checks structural invariants over a set of closed spans: every interval
/// is non-negative, every non-null parent exists in the same trace, and a
/// child's interval nests inside its parent's.
///
/// Returns the first violation found, described for a test failure message.
pub fn well_formed(spans: &[Span]) -> Result<(), String> {
    let mut index = std::collections::BTreeMap::new();
    for s in spans {
        index.insert((s.trace.0, s.id.0), (s.open, s.close));
    }
    for s in spans {
        if s.close < s.open {
            return Err(format!(
                "span {} ({}) closes at {:?} before it opens at {:?}",
                s.id.0, s.label, s.close, s.open
            ));
        }
        if s.parent.is_null() {
            continue;
        }
        match index.get(&(s.trace.0, s.parent.0)) {
            None => {
                return Err(format!(
                    "span {} ({}) has orphan parent {} in trace {}",
                    s.id.0, s.label, s.parent.0, s.trace.0
                ));
            }
            Some(&(po, pc)) => {
                if s.open < po || s.close > pc {
                    return Err(format!(
                        "span {} ({}) [{:?}, {:?}] escapes parent {} [{:?}, {:?}]",
                        s.id.0, s.label, s.open, s.close, s.parent.0, po, pc
                    ));
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(trace: u64, id: u64, parent: u64, open: u64, close: u64) -> Span {
        Span {
            trace: TraceId(trace),
            id: SpanId(id),
            parent: SpanId(parent),
            kind: StageKind::Request,
            label: "t",
            open: Time::from_ps(open),
            close: Time::from_ps(close),
            bytes: 0,
            queue: 0,
            notes: Vec::new(),
            faults: Vec::new(),
        }
    }

    #[test]
    fn all_is_exhaustive_and_index_roundtrips() {
        for (i, k) in StageKind::ALL.iter().enumerate() {
            assert_eq!(k.index(), i, "{:?}", k);
        }
        for (i, k) in StageKind::SEGMENTS.iter().enumerate() {
            assert_eq!(k.segment_index(), Some(i));
        }
        assert_eq!(StageKind::Request.segment_index(), None);
        // Names are unique (they key breakdown tables and trace categories).
        let mut names: Vec<_> = StageKind::ALL.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), StageKind::ALL.len());
    }

    #[test]
    fn well_formed_accepts_nesting_and_rejects_violations() {
        let good = vec![span(2, 1, 0, 0, 100), span(2, 2, 1, 10, 90)];
        assert!(well_formed(&good).is_ok());

        let orphan = vec![span(2, 2, 7, 10, 90)];
        assert!(well_formed(&orphan).unwrap_err().contains("orphan"));

        let escape = vec![span(2, 1, 0, 0, 50), span(2, 2, 1, 10, 90)];
        assert!(well_formed(&escape).unwrap_err().contains("escapes"));

        let backwards = vec![span(2, 1, 0, 100, 10)];
        assert!(well_formed(&backwards).unwrap_err().contains("before"));
    }
}
