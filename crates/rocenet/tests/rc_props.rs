//! Property tests: the RC protocol delivers every message exactly once, in
//! order, byte-identical, across arbitrarily lossy channels — the guarantee
//! the middle tier assumes of its transport (§2.2.1).

use rocenet::rc::{Control, Psn, RcReceiver, RcSender, RxAction};
use rocenet::Message;
use std::collections::VecDeque;
use testkit::gen::{self, Gen};

/// A channel that drops and duplicates deterministically from a seed.
struct LossyChannel {
    state: u64,
    drop_pct: u8,
    dup_pct: u8,
}

impl LossyChannel {
    fn new(seed: u64, drop_pct: u8, dup_pct: u8) -> Self {
        LossyChannel {
            state: seed | 1,
            drop_pct,
            dup_pct,
        }
    }

    fn roll(&mut self) -> u8 {
        self.state ^= self.state << 13;
        self.state ^= self.state >> 7;
        self.state ^= self.state << 17;
        (self.state % 100) as u8
    }

    /// Applies loss/duplication: returns 0, 1 or 2 copies.
    fn transmit<T: Clone>(&mut self, item: T) -> Vec<T> {
        let r = self.roll();
        if r < self.drop_pct {
            return vec![];
        }
        if r < self.drop_pct + self.dup_pct {
            return vec![item.clone(), item];
        }
        vec![item]
    }
}

/// Drives sender↔receiver over lossy data and control channels until every
/// message is delivered (or panics on livelock).
fn run_lossy(
    msgs: &[(u64, Vec<u8>)],
    mtu: usize,
    window: usize,
    seed: u64,
    drop_pct: u8,
    dup_pct: u8,
) -> (Vec<(u64, Vec<u8>)>, u64) {
    let mut tx = RcSender::new(mtu, window, Psn::new(0xFF_FFFA));
    let mut rx = RcReceiver::new(Psn::new(0xFF_FFFA), msgs.len() + 4);
    for (id, data) in msgs {
        tx.post(*id, Message::from_bytes(data.clone()));
    }
    let mut data_chan = LossyChannel::new(seed, drop_pct, dup_pct);
    let mut ctrl_chan = LossyChannel::new(seed ^ 0xABCD, drop_pct, dup_pct);
    let mut wire: VecDeque<rocenet::rc::DataPacket> = VecDeque::new();
    let mut ctrl_wire: VecDeque<Control> = VecDeque::new();
    let mut delivered = Vec::new();
    let mut idle_rounds = 0u32;
    let mut total_rounds = 0u64;
    while !tx.is_idle() {
        total_rounds += 1;
        assert!(
            total_rounds < 2_000_000,
            "livelock: {} delivered of {}",
            delivered.len(),
            msgs.len()
        );
        let mut progressed = false;
        if let Some(pkt) = tx.poll_tx() {
            for copy in data_chan.transmit(pkt) {
                wire.push_back(copy);
            }
            progressed = true;
        }
        if let Some(pkt) = wire.pop_front() {
            let action = rx.on_packet(&pkt);
            let reply = match action {
                RxAction::Reply(c) => c,
                RxAction::Deliver { wr_id, msg, reply } => {
                    delivered.push((wr_id, msg.to_bytes().to_vec()));
                    reply
                }
            };
            for copy in ctrl_chan.transmit(reply) {
                ctrl_wire.push_back(copy);
            }
            progressed = true;
        }
        while let Some(c) = ctrl_wire.pop_front() {
            tx.on_control(c);
            progressed = true;
        }
        if progressed {
            idle_rounds = 0;
        } else {
            idle_rounds += 1;
            if idle_rounds > 4 {
                // Everything in flight was lost: retransmission timeout.
                tx.on_timeout();
                idle_rounds = 0;
            }
        }
    }
    (delivered, tx.retransmissions())
}

fn messages_gen() -> impl Gen<Value = Vec<(u64, Vec<u8>)>> {
    gen::vecs(gen::bytes(1..3000), 1..12).map(|datas| {
        datas
            .into_iter()
            .enumerate()
            .map(|(i, d)| (i as u64, d))
            .collect::<Vec<_>>()
    })
}

testkit::prop! {
    cases = 48;

    /// Exactly-once, in-order, byte-identical delivery under loss and
    /// duplication on both the data and control channels.
    fn reliable_delivery_under_loss(
        msgs in messages_gen(),
        seed in gen::u64s(..),
        drop_pct in gen::u8s(0..35),
        dup_pct in gen::u8s(0..15),
        mtu in gen::choice(vec![256usize, 700, 4096]),
        window in gen::usizes(1..10),
    ) {
        let (delivered, _) = run_lossy(&msgs, mtu, window, seed, drop_pct, dup_pct);
        assert_eq!(delivered.len(), msgs.len(), "exactly once");
        for (got, want) in delivered.iter().zip(msgs.iter()) {
            assert_eq!(got.0, want.0, "in order");
            assert_eq!(&got.1, &want.1, "byte identical");
        }
    }

    /// A clean channel never retransmits.
    fn clean_channel_is_retransmission_free(
        msgs in messages_gen(),
        window in gen::usizes(1..10),
    ) {
        let (delivered, retx) = run_lossy(&msgs, 1024, window, 7, 0, 0);
        assert_eq!(delivered.len(), msgs.len());
        assert_eq!(retx, 0, "no loss, no retransmissions");
    }
}
