//! Property tests for the AAMS split/assemble invariants.

use rocenet::{assemble_from, split_into, MemPool, Message, RecvDesc, SendDesc};
use testkit::gen;

testkit::prop! {
    cases = 256;

    /// For every message and every split point, splitting into host+device
    /// buffers and assembling back yields the original bytes.
    fn split_assemble_identity(
        data in gen::bytes(0..8192),
        h_size in gen::usizes(0..256),
    ) {
        let mut host = MemPool::new("host", 1 << 10);
        let mut dev = MemPool::new("dev", 1 << 14);
        let h_buf = host.alloc(256).unwrap();
        let d_buf = dev.alloc(8192).unwrap();
        let msg = Message::from_bytes(data.clone());
        let desc = RecvDesc::split(1, h_buf, h_size, d_buf);
        let placed = split_into(&msg, &desc, &mut host, &mut dev).unwrap();
        assert_eq!(placed.host_bytes + placed.dev_bytes, data.len());
        assert_eq!(placed.host_bytes, h_size.min(data.len()));
        let sdesc = SendDesc {
            wr_id: 2,
            h_buf,
            h_size: placed.host_bytes,
            d_buf: Some(d_buf),
            d_size: placed.dev_bytes,
        };
        let rebuilt = assemble_from(&sdesc, &host, &dev).unwrap();
        assert_eq!(&rebuilt.to_bytes()[..], &data[..]);
    }

    /// Messages larger than the descriptor capacity are always rejected and
    /// never partially placed beyond buffer bounds.
    fn oversize_always_rejected(extra in gen::usizes(1..4096)) {
        let mut host = MemPool::new("host", 1 << 10);
        let mut dev = MemPool::new("dev", 1 << 13);
        let h_buf = host.alloc(64).unwrap();
        let d_buf = dev.alloc(1024).unwrap();
        let msg = Message::from_bytes(vec![0u8; 64 + 1024 + extra]);
        let desc = RecvDesc::split(1, h_buf, 64, d_buf);
        assert!(split_into(&msg, &desc, &mut host, &mut dev).is_err());
    }

    /// Message rope splitting at any sequence of points preserves content.
    fn rope_split_preserves_bytes(
        data in gen::bytes(1..4096),
        cuts in gen::vecs(gen::usizes(0..4096), 0..6),
    ) {
        let mut m = Message::from_bytes(data.clone());
        let mut parts = Vec::new();
        for c in cuts {
            parts.push(m.split_prefix(c % (data.len() + 1)));
        }
        parts.push(m);
        let mut whole = Message::new();
        for p in &parts {
            for seg in p.segments() {
                whole.append(seg.clone());
            }
        }
        assert_eq!(&whole.to_bytes()[..], &data[..]);
    }
}
