//! Chaos property tests: the RC protocol keeps its exactly-once, in-order,
//! byte-identical guarantee when the wire is driven by `faultkit`'s seeded
//! packet chaos (NAK-inducing drops and duplicates) instead of the ad-hoc
//! lossy channel in `rc_props.rs`. Same protocol invariants, adversarial
//! but replayable wire.

use faultkit::{PacketChaos, PacketFate};
use rocenet::rc::{Control, Psn, RcReceiver, RcSender, RxAction};
use rocenet::Message;
use std::collections::VecDeque;
use testkit::gen::{self, Gen};

/// Applies one chaos verdict: 0, 1 or 2 copies of `item`.
fn transmit<T: Clone>(chaos: &mut PacketChaos, item: T) -> Vec<T> {
    match chaos.fate() {
        PacketFate::Drop => vec![],
        PacketFate::Duplicate => vec![item.clone(), item],
        PacketFate::Deliver => vec![item],
    }
}

/// Drives sender↔receiver with independent chaos processes on the data and
/// control directions until every message is delivered (panics on livelock,
/// which would be a protocol bug — chaos is bounded, so progress must not
/// stall forever).
fn run_chaos(
    msgs: &[(u64, Vec<u8>)],
    mtu: usize,
    window: usize,
    seed: u64,
    drop_p: f64,
    dup_p: f64,
) -> (Vec<(u64, Vec<u8>)>, u64) {
    let mut tx = RcSender::new(mtu, window, Psn::new(0xFF_FFFA));
    let mut rx = RcReceiver::new(Psn::new(0xFF_FFFA), msgs.len() + 4);
    for (id, data) in msgs {
        tx.post(*id, Message::from_bytes(data.clone()));
    }
    let mut data_chaos = PacketChaos::new(seed)
        .with_drop(drop_p)
        .with_duplicate(dup_p);
    let mut ctrl_chaos = PacketChaos::new(seed ^ 0xABCD)
        .with_drop(drop_p)
        .with_duplicate(dup_p);
    let mut wire: VecDeque<rocenet::rc::DataPacket> = VecDeque::new();
    let mut ctrl_wire: VecDeque<Control> = VecDeque::new();
    let mut delivered = Vec::new();
    let mut idle_rounds = 0u32;
    let mut total_rounds = 0u64;
    while !tx.is_idle() {
        total_rounds += 1;
        assert!(
            total_rounds < 2_000_000,
            "livelock: {} delivered of {}",
            delivered.len(),
            msgs.len()
        );
        let mut progressed = false;
        if let Some(pkt) = tx.poll_tx() {
            for copy in transmit(&mut data_chaos, pkt) {
                wire.push_back(copy);
            }
            progressed = true;
        }
        if let Some(pkt) = wire.pop_front() {
            let action = rx.on_packet(&pkt);
            let reply = match action {
                RxAction::Reply(c) => c,
                RxAction::Deliver { wr_id, msg, reply } => {
                    delivered.push((wr_id, msg.to_bytes().to_vec()));
                    reply
                }
            };
            for copy in transmit(&mut ctrl_chaos, reply) {
                ctrl_wire.push_back(copy);
            }
            progressed = true;
        }
        while let Some(c) = ctrl_wire.pop_front() {
            tx.on_control(c);
            progressed = true;
        }
        if progressed {
            idle_rounds = 0;
        } else {
            idle_rounds += 1;
            if idle_rounds > 4 {
                tx.on_timeout();
                idle_rounds = 0;
            }
        }
    }
    (delivered, tx.retransmissions())
}

fn messages_gen() -> impl Gen<Value = Vec<(u64, Vec<u8>)>> {
    gen::vecs(gen::bytes(1..3000), 1..10).map(|datas| {
        datas
            .into_iter()
            .enumerate()
            .map(|(i, d)| (i as u64, d))
            .collect::<Vec<_>>()
    })
}

testkit::prop! {
    cases = 32;

    /// Exactly-once, in-order, byte-identical delivery under seeded packet
    /// chaos on both directions of the QP.
    fn reliable_delivery_under_packet_chaos(
        msgs in messages_gen(),
        seed in gen::u64s(..),
        drop_pm in gen::u64s(0..350),
        dup_pm in gen::u64s(0..150),
        mtu in gen::choice(vec![256usize, 700, 4096]),
        window in gen::usizes(1..10),
    ) {
        let drop_p = drop_pm as f64 / 1000.0;
        let dup_p = dup_pm as f64 / 1000.0;
        let (delivered, _) = run_chaos(&msgs, mtu, window, seed, drop_p, dup_p);
        assert_eq!(delivered.len(), msgs.len(), "exactly once");
        for (got, want) in delivered.iter().zip(msgs.iter()) {
            assert_eq!(got.0, want.0, "in order");
            assert_eq!(&got.1, &want.1, "byte identical");
        }
    }

    /// The same seed produces the same wire schedule: delivery transcripts
    /// and retransmission counts replay byte-identically.
    fn packet_chaos_runs_replay_identically(
        msgs in messages_gen(),
        seed in gen::u64s(..),
    ) {
        let a = run_chaos(&msgs, 1024, 4, seed, 0.2, 0.1);
        let b = run_chaos(&msgs, 1024, 4, seed, 0.2, 0.1);
        assert_eq!(a.0, b.0, "identical delivery transcript");
        assert_eq!(a.1, b.1, "identical retransmission count");
    }
}
