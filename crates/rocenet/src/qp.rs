//! Reliable-connection queue pairs.
//!
//! The simulated transport provides RoCE RC semantics at message
//! granularity: each queue pair delivers its messages **reliably and in
//! order**. In-order delivery is enforced structurally — a QP serializes its
//! send queue, handing the driver one message at a time; the driver starts
//! the next wire transfer only when the previous one completes, exactly like
//! a NIC draining a send queue.

use crate::message::Message;
use std::collections::VecDeque;

/// Address of a queue pair: owning node and QP number on that node.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct QpAddr {
    /// Owning node id (assigned by the cluster driver).
    pub node: u32,
    /// Queue pair number within the node.
    pub qpn: u32,
}

/// A posted send, queued until the wire is free.
#[derive(Clone, Debug)]
pub struct PostedSend {
    /// Caller-chosen work-request id, returned in the completion.
    pub wr_id: u64,
    /// The message to transmit.
    pub msg: Message,
}

/// One side of a reliable connection.
#[derive(Debug)]
pub struct QueuePair {
    addr: QpAddr,
    peer: Option<QpAddr>,
    sq: VecDeque<PostedSend>,
    /// True while a message from this QP is on the wire.
    sending: bool,
    sends_completed: u64,
}

impl QueuePair {
    /// Creates an unconnected QP with the given address.
    pub fn new(addr: QpAddr) -> Self {
        QueuePair {
            addr,
            peer: None,
            sq: VecDeque::new(),
            sending: false,
            sends_completed: 0,
        }
    }

    /// This QP's address.
    pub fn addr(&self) -> QpAddr {
        self.addr
    }

    /// The connected peer.
    ///
    /// # Panics
    ///
    /// Panics if the QP is not connected.
    pub fn peer(&self) -> QpAddr {
        self.peer.expect("queue pair is not connected")
    }

    /// True once [`QueuePair::connect`] has been called.
    pub fn is_connected(&self) -> bool {
        self.peer.is_some()
    }

    /// Connects this QP to a remote peer (one side of the handshake).
    ///
    /// # Panics
    ///
    /// Panics if already connected.
    pub fn connect(&mut self, peer: QpAddr) {
        assert!(self.peer.is_none(), "queue pair already connected");
        self.peer = Some(peer);
    }

    /// Posts a message to the send queue. Returns the message to put on the
    /// wire *now* if the QP was idle; otherwise the message waits its turn.
    ///
    /// # Panics
    ///
    /// Panics if the QP is not connected.
    pub fn post_send(&mut self, wr_id: u64, msg: Message) -> Option<PostedSend> {
        assert!(self.peer.is_some(), "post_send on unconnected QP");
        self.sq.push_back(PostedSend { wr_id, msg });
        if self.sending {
            None
        } else {
            self.sending = true;
            self.sq.front().cloned()
        }
    }

    /// Reports that the in-flight message finished its wire transfer.
    /// Returns the next queued message to transmit, if any.
    ///
    /// # Panics
    ///
    /// Panics if no send was in flight.
    pub fn send_complete(&mut self) -> (PostedSend, Option<PostedSend>) {
        assert!(self.sending, "send_complete with no send in flight");
        let done = self.sq.pop_front().expect("in-flight send present");
        self.sends_completed += 1;
        match self.sq.front() {
            Some(next) => (done, Some(next.clone())),
            None => {
                self.sending = false;
                (done, None)
            }
        }
    }

    /// Messages waiting (including the one in flight).
    pub fn send_queue_depth(&self) -> usize {
        self.sq.len()
    }

    /// Completed send count.
    pub fn sends_completed(&self) -> u64 {
        self.sends_completed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn qp() -> QueuePair {
        let mut q = QueuePair::new(QpAddr { node: 0, qpn: 1 });
        q.connect(QpAddr { node: 1, qpn: 9 });
        q
    }

    #[test]
    fn idle_qp_sends_immediately() {
        let mut q = qp();
        let first = q.post_send(7, Message::from_bytes(vec![1, 2, 3]));
        assert_eq!(first.unwrap().wr_id, 7);
    }

    #[test]
    fn busy_qp_queues_in_order() {
        let mut q = qp();
        q.post_send(1, Message::new());
        assert!(q.post_send(2, Message::new()).is_none());
        assert!(q.post_send(3, Message::new()).is_none());
        assert_eq!(q.send_queue_depth(), 3);
        let (done, next) = q.send_complete();
        assert_eq!(done.wr_id, 1);
        assert_eq!(next.unwrap().wr_id, 2);
        let (done, next) = q.send_complete();
        assert_eq!(done.wr_id, 2);
        assert_eq!(next.unwrap().wr_id, 3);
        let (done, next) = q.send_complete();
        assert_eq!(done.wr_id, 3);
        assert!(next.is_none());
        assert_eq!(q.sends_completed(), 3);
        // Idle again: next post starts immediately.
        assert!(q.post_send(4, Message::new()).is_some());
    }

    #[test]
    #[should_panic(expected = "unconnected")]
    fn send_on_unconnected_panics() {
        let mut q = QueuePair::new(QpAddr { node: 0, qpn: 0 });
        q.post_send(1, Message::new());
    }

    #[test]
    #[should_panic(expected = "no send in flight")]
    fn spurious_completion_panics() {
        let mut q = qp();
        q.send_complete();
    }
}
