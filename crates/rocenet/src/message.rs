//! RDMA messages as zero-copy byte ropes.
//!
//! A middle-tier message is a 64-byte block-storage header followed by a
//! payload (a data block, possibly compressed). AAMS splits and reassembles
//! messages at arbitrary byte boundaries, so [`Message`] is a small rope of
//! [`Bytes`] segments: prefix splits and concatenation are O(segments)
//! without copying payload bytes.

use simkit::Bytes;

/// An RDMA message: an ordered sequence of byte segments.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Message {
    parts: Vec<Bytes>,
}

impl Message {
    /// An empty message.
    pub fn new() -> Self {
        Message::default()
    }

    /// A message from one contiguous buffer.
    pub fn from_bytes(data: impl Into<Bytes>) -> Self {
        let b = data.into();
        if b.is_empty() {
            Message::new()
        } else {
            Message { parts: vec![b] }
        }
    }

    /// A message of `header` followed by `payload` (the canonical write
    /// request layout), sharing both buffers.
    pub fn header_payload(header: impl Into<Bytes>, payload: impl Into<Bytes>) -> Self {
        let mut m = Message::new();
        m.append(header.into());
        m.append(payload.into());
        m
    }

    /// Appends a segment (no copy).
    pub fn append(&mut self, segment: Bytes) {
        if !segment.is_empty() {
            self.parts.push(segment);
        }
    }

    /// Total length in bytes.
    pub fn len(&self) -> usize {
        self.parts.iter().map(Bytes::len).sum()
    }

    /// True if the message carries no bytes.
    pub fn is_empty(&self) -> bool {
        self.parts.is_empty()
    }

    /// Splits off the first `n` bytes (clamped to the message length),
    /// returning them as a new message and leaving the remainder in `self`.
    /// Zero-copy: segments are sliced, not duplicated.
    pub fn split_prefix(&mut self, n: usize) -> Message {
        let mut head = Message::new();
        let mut want = n;
        let mut rest = Vec::new();
        for part in self.parts.drain(..) {
            if want == 0 {
                rest.push(part);
            } else if part.len() <= want {
                want -= part.len();
                head.append(part);
            } else {
                head.append(part.slice(..want));
                rest.push(part.slice(want..));
                want = 0;
            }
        }
        self.parts = rest;
        head
    }

    /// Copies the message into one contiguous buffer.
    pub fn to_bytes(&self) -> Bytes {
        match self.parts.len() {
            0 => Bytes::new(),
            1 => self.parts[0].clone(),
            _ => {
                let mut v = Vec::with_capacity(self.len());
                for p in &self.parts {
                    v.extend_from_slice(p);
                }
                Bytes::from(v)
            }
        }
    }

    /// Iterates over the underlying segments.
    pub fn segments(&self) -> impl Iterator<Item = &Bytes> {
        self.parts.iter()
    }
}

impl From<Vec<u8>> for Message {
    fn from(v: Vec<u8>) -> Self {
        Message::from_bytes(Bytes::from(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_payload_layout() {
        let m = Message::header_payload(vec![1u8; 64], vec![2u8; 4096]);
        assert_eq!(m.len(), 4160);
        let flat = m.to_bytes();
        assert!(flat[..64].iter().all(|&b| b == 1));
        assert!(flat[64..].iter().all(|&b| b == 2));
    }

    #[test]
    fn split_prefix_is_exact_and_zero_copy() {
        let mut m = Message::header_payload(vec![1u8; 64], vec![2u8; 4096]);
        let head = m.split_prefix(64);
        assert_eq!(head.len(), 64);
        assert_eq!(m.len(), 4096);
        // Split inside a segment.
        let mut m2 = Message::from_bytes(vec![7u8; 100]);
        let h2 = m2.split_prefix(33);
        assert_eq!(h2.len(), 33);
        assert_eq!(m2.len(), 67);
    }

    #[test]
    fn split_clamps_to_length() {
        let mut m = Message::from_bytes(vec![0u8; 10]);
        let head = m.split_prefix(50);
        assert_eq!(head.len(), 10);
        assert!(m.is_empty());
    }

    #[test]
    fn split_then_concat_is_identity() {
        let data: Vec<u8> = (0..200u8).cycle().take(5000).collect();
        for cut in [0, 1, 63, 64, 65, 4999, 5000] {
            let mut m = Message::from_bytes(data.clone());
            let mut head = m.split_prefix(cut);
            for seg in m.segments() {
                head.append(seg.clone());
            }
            assert_eq!(&head.to_bytes()[..], &data[..], "cut={cut}");
        }
    }

    #[test]
    fn empty_segments_are_dropped() {
        let mut m = Message::new();
        m.append(Bytes::new());
        assert!(m.is_empty());
        assert_eq!(m.to_bytes().len(), 0);
    }
}
