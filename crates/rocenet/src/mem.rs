//! Byte-addressed memory pools with region allocation.
//!
//! SmartDS messages span *two* address spaces: host memory (headers) and the
//! SmartNIC's device memory (payloads). A [`MemPool`] is one such space —
//! real bytes, bounds-checked reads/writes, and a simple free-list allocator
//! behind the paper's `host_alloc` / `dev_alloc` API.

use simkit::Bytes;
use std::error::Error;
use std::fmt;

/// A contiguous allocation inside one [`MemPool`].
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct Region {
    offset: usize,
    len: usize,
}

impl Region {
    /// Byte offset inside the pool.
    pub fn offset(&self) -> usize {
        self.offset
    }

    /// Region length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the region is zero-sized.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// A sub-region `[start, start+len)` of this region.
    ///
    /// # Panics
    ///
    /// Panics if the slice exceeds the region.
    pub fn slice(&self, start: usize, len: usize) -> Region {
        assert!(
            start + len <= self.len,
            "slice {start}+{len} exceeds region of {} bytes",
            self.len
        );
        Region {
            offset: self.offset + start,
            len,
        }
    }
}

/// Errors from pool operations.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum MemError {
    /// The pool has no free range large enough.
    OutOfMemory {
        /// Bytes requested.
        requested: usize,
        /// Largest free range available.
        largest_free: usize,
    },
    /// Access outside a region's bounds.
    OutOfBounds,
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::OutOfMemory {
                requested,
                largest_free,
            } => write!(
                f,
                "out of memory: requested {requested} bytes, largest free range {largest_free}"
            ),
            MemError::OutOfBounds => write!(f, "access outside region bounds"),
        }
    }
}

impl Error for MemError {}

/// A byte-addressed memory pool (host DRAM or SmartNIC device memory).
#[derive(Debug)]
pub struct MemPool {
    name: &'static str,
    data: Vec<u8>,
    /// Sorted, coalesced free ranges as (offset, len).
    free: Vec<(usize, usize)>,
}

impl MemPool {
    /// Creates a pool of `capacity` bytes.
    pub fn new(name: &'static str, capacity: usize) -> Self {
        MemPool {
            name,
            data: vec![0; capacity],
            free: vec![(0, capacity)],
        }
    }

    /// Pool display name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.data.len()
    }

    /// Bytes currently available for allocation.
    pub fn free_bytes(&self) -> usize {
        self.free.iter().map(|&(_, l)| l).sum()
    }

    /// Allocates `len` bytes (first fit).
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfMemory`] when no free range fits.
    pub fn alloc(&mut self, len: usize) -> Result<Region, MemError> {
        if len == 0 {
            return Ok(Region { offset: 0, len: 0 });
        }
        let Some(idx) = self.free.iter().position(|&(_, l)| l >= len) else {
            return Err(MemError::OutOfMemory {
                requested: len,
                largest_free: self.free.iter().map(|&(_, l)| l).max().unwrap_or(0),
            });
        };
        let (off, flen) = self.free[idx];
        if flen == len {
            self.free.remove(idx);
        } else {
            self.free[idx] = (off + len, flen - len);
        }
        Ok(Region { offset: off, len })
    }

    /// Returns a region to the pool, coalescing adjacent free ranges.
    pub fn free(&mut self, region: Region) {
        if region.is_empty() {
            return;
        }
        let pos = self
            .free
            .partition_point(|&(off, _)| off < region.offset);
        self.free.insert(pos, (region.offset, region.len));
        // Coalesce around the insertion point.
        let mut i = pos.saturating_sub(1);
        while i + 1 < self.free.len() {
            let (a_off, a_len) = self.free[i];
            let (b_off, b_len) = self.free[i + 1];
            if a_off + a_len == b_off {
                self.free[i] = (a_off, a_len + b_len);
                self.free.remove(i + 1);
            } else if i + 1 > pos {
                break;
            } else {
                i += 1;
            }
        }
    }

    /// Writes `bytes` at `offset` within `region`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfBounds`] if the write exceeds the region.
    pub fn write(&mut self, region: Region, offset: usize, bytes: &[u8]) -> Result<(), MemError> {
        if offset + bytes.len() > region.len {
            return Err(MemError::OutOfBounds);
        }
        let at = region.offset + offset;
        self.data[at..at + bytes.len()].copy_from_slice(bytes);
        Ok(())
    }

    /// Reads `len` bytes at `offset` within `region`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfBounds`] if the read exceeds the region.
    pub fn read(&self, region: Region, offset: usize, len: usize) -> Result<Bytes, MemError> {
        if offset + len > region.len {
            return Err(MemError::OutOfBounds);
        }
        let at = region.offset + offset;
        Ok(Bytes::copy_from_slice(&self.data[at..at + len]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_write_read_roundtrip() {
        let mut p = MemPool::new("host", 1024);
        let r = p.alloc(64).unwrap();
        p.write(r, 0, b"hello").unwrap();
        assert_eq!(&p.read(r, 0, 5).unwrap()[..], b"hello");
        assert_eq!(p.free_bytes(), 1024 - 64);
    }

    #[test]
    fn oom_reports_largest_range() {
        let mut p = MemPool::new("host", 100);
        p.alloc(60).unwrap();
        let err = p.alloc(50).unwrap_err();
        assert_eq!(
            err,
            MemError::OutOfMemory {
                requested: 50,
                largest_free: 40
            }
        );
    }

    #[test]
    fn free_coalesces_adjacent_ranges() {
        let mut p = MemPool::new("host", 300);
        let a = p.alloc(100).unwrap();
        let b = p.alloc(100).unwrap();
        let c = p.alloc(100).unwrap();
        p.free(a);
        p.free(c);
        p.free(b);
        assert_eq!(p.free_bytes(), 300);
        // Fully coalesced: a single 300-byte allocation must succeed.
        assert!(p.alloc(300).is_ok());
    }

    #[test]
    fn out_of_bounds_rejected() {
        let mut p = MemPool::new("host", 128);
        let r = p.alloc(16).unwrap();
        assert_eq!(p.write(r, 10, &[0; 10]), Err(MemError::OutOfBounds));
        assert_eq!(p.read(r, 16, 1).unwrap_err(), MemError::OutOfBounds);
    }

    #[test]
    fn zero_sized_alloc_is_fine() {
        let mut p = MemPool::new("host", 10);
        let r = p.alloc(0).unwrap();
        assert!(r.is_empty());
        p.free(r);
        assert_eq!(p.free_bytes(), 10);
    }

    #[test]
    fn region_slicing() {
        let mut p = MemPool::new("host", 64);
        let r = p.alloc(32).unwrap();
        p.write(r, 0, &(0u8..32).collect::<Vec<_>>()).unwrap();
        let s = r.slice(8, 8);
        assert_eq!(&p.read(s, 0, 8).unwrap()[..], &[8, 9, 10, 11, 12, 13, 14, 15]);
    }

    #[test]
    #[should_panic(expected = "exceeds region")]
    fn bad_slice_panics() {
        let mut p = MemPool::new("host", 64);
        let r = p.alloc(8).unwrap();
        r.slice(4, 8);
    }
}
