//! The reliable-connection (RC) wire protocol: packetization, 24-bit PSNs,
//! acknowledgements, and go-back-N retransmission.
//!
//! The paper's transport is "typically RDMA or a variant" whose reliability
//! the middle tier simply assumes (§2.2.1) — on SmartDS it is implemented
//! *in hardware* inside the extended RoCE stack. This module is that state
//! machine: a sender that segments messages into MTU packets under a
//! bounded window and rewinds on loss, and a receiver that accepts strictly
//! in order, NAKs gaps, re-acks duplicates, and reassembles messages
//! exactly once. The property tests in `tests/rc_props.rs` drive both ends
//! through arbitrary loss/duplication patterns and assert exactly-once
//! in-order delivery — the guarantee everything above relies on.
//!
//! Timing is intentionally absent: the cluster simulation models bandwidth
//! with fluid flows, while this layer pins down protocol *correctness*.

use crate::message::Message;
use simkit::Bytes;
use std::collections::VecDeque;

/// 24-bit packet sequence number with wrapping comparison (RoCE BTH PSN).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct Psn(u32);

const PSN_MASK: u32 = 0x00FF_FFFF;

impl Psn {
    /// A PSN from a raw value (masked to 24 bits).
    pub fn new(v: u32) -> Self {
        Psn(v & PSN_MASK)
    }

    /// Raw 24-bit value.
    pub fn value(self) -> u32 {
        self.0
    }

    /// The next PSN, wrapping at 2²⁴.
    #[must_use]
    pub fn next(self) -> Psn {
        Psn((self.0 + 1) & PSN_MASK)
    }

    /// Serial-number distance `self → other` in the 24-bit circle,
    /// interpreted as "how far ahead is other" (0 ≤ d < 2²⁴).
    pub fn distance_to(self, other: Psn) -> u32 {
        (other.0.wrapping_sub(self.0)) & PSN_MASK
    }

    /// True if `self` precedes `other` within half the sequence space.
    pub fn before(self, other: Psn) -> bool {
        let d = self.distance_to(other);
        const HALF_SPACE: u32 = PSN_MASK.div_ceil(2);
        d != 0 && d < HALF_SPACE
    }
}

/// Position of a packet within its message (BTH opcode class).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Position {
    /// First packet of a multi-packet message.
    First,
    /// Interior packet.
    Middle,
    /// Final packet of a multi-packet message.
    Last,
    /// Entire message in one packet.
    Only,
}

/// A data packet on the wire.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DataPacket {
    /// Sequence number.
    pub psn: Psn,
    /// Message position marker.
    pub position: Position,
    /// Work-request id of the originating send (carried for completion
    /// bookkeeping; real RoCE recovers this from the send queue instead).
    pub wr_id: u64,
    /// Payload bytes.
    pub payload: Bytes,
}

/// Control packets returned by the receiver.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Control {
    /// Cumulative acknowledgement: everything up to and including `psn`.
    Ack(Psn),
    /// Out-of-sequence NAK: retransmit from `expected`.
    Nak {
        /// The PSN the receiver expects next.
        expected: Psn,
    },
    /// Receiver-not-ready: no buffer posted; retransmit from `expected`
    /// after backoff.
    RnrNak {
        /// The PSN the receiver expects next.
        expected: Psn,
    },
}

/// The sending half of an RC connection.
#[derive(Debug)]
pub struct RcSender {
    mtu: usize,
    window: usize,
    next_psn: Psn,
    /// Oldest unacknowledged PSN.
    una: Psn,
    /// Unacknowledged packets, oldest first (retransmit buffer).
    unacked: VecDeque<DataPacket>,
    /// Cursor into `unacked` for the next (re)transmission.
    resend_cursor: usize,
    /// Messages not yet fully packetized.
    queue: VecDeque<(u64, Message)>,
    /// Partial packetization state of the queue head: next offset.
    head_offset: usize,
    completed: Vec<u64>,
    retransmissions: u64,
}

impl RcSender {
    /// A sender with the given MTU and window (max unacked packets).
    ///
    /// # Panics
    ///
    /// Panics if `mtu` or `window` is zero.
    pub fn new(mtu: usize, window: usize, initial_psn: Psn) -> Self {
        assert!(mtu > 0, "mtu must be positive");
        assert!(window > 0, "window must be positive");
        RcSender {
            mtu,
            window,
            next_psn: initial_psn,
            una: initial_psn,
            unacked: VecDeque::new(),
            resend_cursor: 0,
            queue: VecDeque::new(),
            head_offset: 0,
            completed: Vec::new(),
            retransmissions: 0,
        }
    }

    /// Queues a message for transmission.
    pub fn post(&mut self, wr_id: u64, msg: Message) {
        self.queue.push_back((wr_id, msg));
    }

    /// Packets currently unacknowledged.
    pub fn in_flight(&self) -> usize {
        self.unacked.len()
    }

    /// Total retransmitted packets (loss-recovery cost metric).
    pub fn retransmissions(&self) -> u64 {
        self.retransmissions
    }

    /// True when nothing is queued or in flight.
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty() && self.unacked.is_empty()
    }

    /// Produces the next packet to put on the wire: first any pending
    /// retransmissions (after a NAK/timeout rewound the cursor), then new
    /// packets while the window has room.
    pub fn poll_tx(&mut self) -> Option<DataPacket> {
        // Retransmission path: cursor behind the in-flight tail.
        if self.resend_cursor < self.unacked.len() {
            let pkt = self.unacked[self.resend_cursor].clone();
            self.resend_cursor += 1;
            return Some(pkt);
        }
        // New data path, window permitting.
        if self.unacked.len() >= self.window {
            return None;
        }
        let (wr_id, msg) = self.queue.front()?;
        let wr_id = *wr_id;
        let total = msg.len();
        let start = self.head_offset;
        let end = (start + self.mtu).min(total);
        let mut m = msg.clone();
        let _ = m.split_prefix(start);
        let chunk = m.split_prefix(end - start);
        let position = match (start == 0, end == total) {
            (true, true) => Position::Only,
            (true, false) => Position::First,
            (false, false) => Position::Middle,
            (false, true) => Position::Last,
        };
        let pkt = DataPacket {
            psn: self.next_psn,
            position,
            wr_id,
            payload: chunk.to_bytes(),
        };
        self.next_psn = self.next_psn.next();
        if end == total {
            self.queue.pop_front();
            self.head_offset = 0;
        } else {
            self.head_offset = end;
        }
        self.unacked.push_back(pkt.clone());
        self.resend_cursor = self.unacked.len();
        Some(pkt)
    }

    /// Handles a control packet from the peer. Completed work-request ids
    /// accumulate and are drained with [`RcSender::take_completed`].
    pub fn on_control(&mut self, ctrl: Control) {
        match ctrl {
            Control::Ack(psn) => {
                // Cumulative: retire everything at or before `psn`.
                while let Some(front) = self.unacked.front() {
                    if front.psn == psn || front.psn.before(psn) {
                        let pkt = self.unacked.pop_front().expect("front exists");
                        self.una = pkt.psn.next();
                        if matches!(pkt.position, Position::Last | Position::Only) {
                            self.completed.push(pkt.wr_id);
                        }
                        self.resend_cursor = self.resend_cursor.saturating_sub(1);
                    } else {
                        break;
                    }
                }
            }
            Control::Nak { expected } | Control::RnrNak { expected } => {
                // Go-back-N: retire implicitly acked prefix, rewind cursor.
                self.on_control(Control::Ack(prev_psn(expected)));
                let before = self.resend_cursor;
                self.resend_cursor = 0;
                self.retransmissions += before.min(self.unacked.len()) as u64;
            }
        }
    }

    /// Retransmission timeout: resend everything unacknowledged.
    pub fn on_timeout(&mut self) {
        self.retransmissions += self.resend_cursor.min(self.unacked.len()) as u64;
        self.resend_cursor = 0;
    }

    /// Drains the work-request ids whose final packet has been acked.
    pub fn take_completed(&mut self) -> Vec<u64> {
        std::mem::take(&mut self.completed)
    }
}

fn prev_psn(p: Psn) -> Psn {
    Psn((p.value().wrapping_sub(1)) & PSN_MASK)
}

/// What the receiver wants done after a data packet arrives.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RxAction {
    /// Send this control packet back.
    Reply(Control),
    /// Deliver a fully reassembled message, then send the control packet.
    Deliver {
        /// Originating work-request id.
        wr_id: u64,
        /// The reassembled message.
        msg: Message,
        /// The acknowledgement to return.
        reply: Control,
    },
}

/// The receiving half of an RC connection.
#[derive(Debug)]
pub struct RcReceiver {
    expected: Psn,
    assembling: Vec<Bytes>,
    /// Buffers available (0 simulates receiver-not-ready).
    credits: usize,
    delivered: u64,
    duplicates: u64,
}

impl RcReceiver {
    /// A receiver expecting `initial_psn` first, with `credits` posted
    /// receive buffers.
    pub fn new(initial_psn: Psn, credits: usize) -> Self {
        RcReceiver {
            expected: initial_psn,
            assembling: Vec::new(),
            credits,
            delivered: 0,
            duplicates: 0,
        }
    }

    /// Posts another receive buffer (lifts an RNR condition).
    pub fn add_credit(&mut self) {
        self.credits += 1;
    }

    /// Messages delivered so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Duplicate packets observed (re-acked and dropped).
    pub fn duplicates(&self) -> u64 {
        self.duplicates
    }

    /// Processes one data packet.
    pub fn on_packet(&mut self, pkt: &DataPacket) -> RxAction {
        if pkt.psn != self.expected {
            if pkt.psn.before(self.expected) {
                // Duplicate of something already received: re-ack so the
                // sender can advance if our previous ack was lost.
                self.duplicates += 1;
                return RxAction::Reply(Control::Ack(prev_psn(self.expected)));
            }
            // Gap: go-back-N NAK.
            return RxAction::Reply(Control::Nak {
                expected: self.expected,
            });
        }
        // New messages need a posted buffer.
        if matches!(pkt.position, Position::First | Position::Only) && self.credits == 0 {
            return RxAction::Reply(Control::RnrNak {
                expected: self.expected,
            });
        }
        self.expected = self.expected.next();
        match pkt.position {
            Position::First => {
                self.assembling.clear();
                self.assembling.push(pkt.payload.clone());
                RxAction::Reply(Control::Ack(pkt.psn))
            }
            Position::Middle => {
                self.assembling.push(pkt.payload.clone());
                RxAction::Reply(Control::Ack(pkt.psn))
            }
            Position::Last | Position::Only => {
                let mut msg = Message::new();
                if pkt.position == Position::Last {
                    for seg in self.assembling.drain(..) {
                        msg.append(seg);
                    }
                }
                msg.append(pkt.payload.clone());
                self.credits -= 1;
                self.delivered += 1;
                RxAction::Deliver {
                    wr_id: pkt.wr_id,
                    msg,
                    reply: Control::Ack(pkt.psn),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(n: usize, tag: u8) -> Message {
        Message::from_bytes(vec![tag; n])
    }

    /// Runs sender→receiver until idle over a perfect channel.
    fn run_clean(tx: &mut RcSender, rx: &mut RcReceiver) -> Vec<(u64, Vec<u8>)> {
        let mut out = Vec::new();
        let mut guard = 0;
        while !tx.is_idle() {
            guard += 1;
            assert!(guard < 100_000, "no progress");
            if let Some(pkt) = tx.poll_tx() {
                match rx.on_packet(&pkt) {
                    RxAction::Reply(c) => tx.on_control(c),
                    RxAction::Deliver { wr_id, msg, reply } => {
                        out.push((wr_id, msg.to_bytes().to_vec()));
                        tx.on_control(reply);
                    }
                }
            }
        }
        out
    }

    #[test]
    fn psn_wrapping_comparison() {
        let a = Psn::new(0xFF_FFFF);
        let b = a.next();
        assert_eq!(b.value(), 0);
        assert!(a.before(b));
        assert!(!b.before(a));
        assert_eq!(a.distance_to(b), 1);
    }

    #[test]
    fn single_packet_message() {
        let mut tx = RcSender::new(4096, 8, Psn::new(0));
        let mut rx = RcReceiver::new(Psn::new(0), 16);
        tx.post(7, msg(100, 1));
        let got = run_clean(&mut tx, &mut rx);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].0, 7);
        assert_eq!(got[0].1, vec![1u8; 100]);
        assert_eq!(tx.take_completed(), vec![7]);
        assert_eq!(tx.retransmissions(), 0);
    }

    #[test]
    fn multi_packet_segmentation_and_reassembly() {
        let mut tx = RcSender::new(1000, 4, Psn::new(100));
        let mut rx = RcReceiver::new(Psn::new(100), 16);
        let data: Vec<u8> = (0..10_000).map(|i| i as u8).collect();
        tx.post(1, Message::from_bytes(data.clone()));
        let got = run_clean(&mut tx, &mut rx);
        assert_eq!(got[0].1, data);
    }

    #[test]
    fn window_limits_inflight() {
        let mut tx = RcSender::new(100, 3, Psn::new(0));
        tx.post(1, msg(1000, 9)); // 10 packets
        assert!(tx.poll_tx().is_some());
        assert!(tx.poll_tx().is_some());
        assert!(tx.poll_tx().is_some());
        assert!(tx.poll_tx().is_none(), "window of 3 must block the 4th");
        tx.on_control(Control::Ack(Psn::new(0)));
        assert!(tx.poll_tx().is_some());
    }

    #[test]
    fn lost_packet_recovered_by_nak() {
        let mut tx = RcSender::new(100, 8, Psn::new(0));
        let mut rx = RcReceiver::new(Psn::new(0), 16);
        tx.post(1, msg(250, 5)); // 3 packets
        let p0 = tx.poll_tx().unwrap();
        let _p1_lost = tx.poll_tx().unwrap();
        let p2 = tx.poll_tx().unwrap();
        // p0 arrives fine.
        tx.on_control(match rx.on_packet(&p0) {
            RxAction::Reply(c) => c,
            _ => panic!(),
        });
        // p2 arrives out of order → NAK(expected=1).
        let nak = match rx.on_packet(&p2) {
            RxAction::Reply(c) => c,
            _ => panic!(),
        };
        assert_eq!(nak, Control::Nak { expected: Psn::new(1) });
        tx.on_control(nak);
        // Go-back-N: sender resends PSN 1 then 2.
        let r1 = tx.poll_tx().unwrap();
        assert_eq!(r1.psn, Psn::new(1));
        let r2 = tx.poll_tx().unwrap();
        assert_eq!(r2.psn, Psn::new(2));
        assert!(tx.retransmissions() > 0);
        match rx.on_packet(&r1) {
            RxAction::Reply(c) => tx.on_control(c),
            _ => panic!(),
        }
        match rx.on_packet(&r2) {
            RxAction::Deliver { msg, .. } => assert_eq!(msg.len(), 250),
            other => panic!("expected delivery, got {other:?}"),
        }
    }

    #[test]
    fn duplicate_packets_are_reacked_not_redelivered() {
        let mut tx = RcSender::new(4096, 8, Psn::new(0));
        let mut rx = RcReceiver::new(Psn::new(0), 16);
        tx.post(1, msg(64, 3));
        let pkt = tx.poll_tx().unwrap();
        let first = rx.on_packet(&pkt);
        assert!(matches!(first, RxAction::Deliver { .. }));
        // The same packet again: duplicate, re-ack only.
        let again = rx.on_packet(&pkt);
        assert_eq!(again, RxAction::Reply(Control::Ack(Psn::new(0))));
        assert_eq!(rx.delivered(), 1);
        assert_eq!(rx.duplicates(), 1);
    }

    #[test]
    fn rnr_stalls_until_credit_posted() {
        let mut tx = RcSender::new(4096, 8, Psn::new(0));
        let mut rx = RcReceiver::new(Psn::new(0), 0); // no buffers posted
        tx.post(1, msg(64, 2));
        let pkt = tx.poll_tx().unwrap();
        let r = rx.on_packet(&pkt);
        assert_eq!(r, RxAction::Reply(Control::RnrNak { expected: Psn::new(0) }));
        tx.on_control(match r {
            RxAction::Reply(c) => c,
            _ => unreachable!(),
        });
        rx.add_credit();
        let retry = tx.poll_tx().unwrap();
        assert_eq!(retry.psn, Psn::new(0));
        assert!(matches!(rx.on_packet(&retry), RxAction::Deliver { .. }));
    }

    #[test]
    fn timeout_resends_window() {
        let mut tx = RcSender::new(100, 4, Psn::new(0));
        tx.post(1, msg(400, 1));
        for _ in 0..4 {
            tx.poll_tx().unwrap();
        }
        assert!(tx.poll_tx().is_none());
        tx.on_timeout();
        // All four come out again, in order.
        for i in 0..4 {
            assert_eq!(tx.poll_tx().unwrap().psn, Psn::new(i));
        }
    }

    #[test]
    fn many_messages_complete_in_order() {
        let mut tx = RcSender::new(512, 6, Psn::new(0xFF_FFF0)); // crosses wrap
        let mut rx = RcReceiver::new(Psn::new(0xFF_FFF0), 64);
        for i in 0..20 {
            tx.post(i, msg(700 + i as usize * 13, i as u8));
        }
        let got = run_clean(&mut tx, &mut rx);
        let ids: Vec<u64> = got.iter().map(|(id, _)| *id).collect();
        assert_eq!(ids, (0..20).collect::<Vec<_>>());
        let done = tx.take_completed();
        assert_eq!(done, (0..20).collect::<Vec<_>>());
    }
}
