//! One-sided RDMA verbs: memory regions, keys, and WRITE/READ execution.
//!
//! The Figure 4 micro-benchmark "uses RDMA READ and RDMA WRITE to access
//! remote memory", and the SmartDS RoCE stack supports "accessing host
//! memory using one-sided and two-sided RDMA verbs" (§4.1). This module
//! provides the one-sided half: memory-region registration with local and
//! remote keys, permission-checked remote access, and typed failures
//! (RoCE's remote-access-error class).

use crate::mem::{MemPool, Region};
use simkit::Bytes;
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// Access rights attached to a registered memory region.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Access {
    /// Remote peers may RDMA-READ this region.
    pub remote_read: bool,
    /// Remote peers may RDMA-WRITE this region.
    pub remote_write: bool,
}

impl Access {
    /// Read-only remote access.
    pub const READ_ONLY: Access = Access {
        remote_read: true,
        remote_write: false,
    };
    /// Full remote access.
    pub const READ_WRITE: Access = Access {
        remote_read: true,
        remote_write: true,
    };
    /// Local-only (no remote rights; one-sided ops will be rejected).
    pub const LOCAL_ONLY: Access = Access {
        remote_read: false,
        remote_write: false,
    };
}

/// The remote key naming a registered region (what peers embed in their
/// work requests).
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RKey(u32);

/// One-sided operation failures (RoCE remote access error class).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum VerbError {
    /// The rkey does not name a registered region (or was invalidated).
    BadKey(RKey),
    /// The region forbids the requested direction.
    AccessDenied {
        /// The offending key.
        rkey: RKey,
        /// True for writes, false for reads.
        write: bool,
    },
    /// The access exceeds the region's bounds.
    OutOfBounds {
        /// Requested offset.
        offset: usize,
        /// Requested length.
        len: usize,
        /// Region capacity.
        capacity: usize,
    },
}

impl fmt::Display for VerbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerbError::BadKey(k) => write!(f, "remote access error: unknown rkey {k:?}"),
            VerbError::AccessDenied { rkey, write } => write!(
                f,
                "remote access error: {} denied for {rkey:?}",
                if *write { "write" } else { "read" }
            ),
            VerbError::OutOfBounds {
                offset,
                len,
                capacity,
            } => write!(
                f,
                "remote access error: {offset}+{len} exceeds region of {capacity} bytes"
            ),
        }
    }
}

impl Error for VerbError {}

#[derive(Debug)]
struct Registered {
    region: Region,
    access: Access,
}

/// A protection domain: registered regions over one memory pool.
///
/// Registrations live in a `BTreeMap` so [`ProtectionDomain::rkeys`]
/// iterates in key order: simulation reports derived from a domain walk are
/// byte-identical across runs and hosts (hasher randomization must never
/// leak into observable state).
#[derive(Debug, Default)]
pub struct ProtectionDomain {
    regions: BTreeMap<RKey, Registered>,
    next_key: u32,
}

impl ProtectionDomain {
    /// An empty protection domain.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `region` with the given remote `access`, returning its
    /// remote key.
    pub fn register(&mut self, region: Region, access: Access) -> RKey {
        let key = RKey(self.next_key);
        self.next_key += 1;
        self.regions.insert(key, Registered { region, access });
        key
    }

    /// Invalidates a key (deregistration). Subsequent one-sided access
    /// fails with [`VerbError::BadKey`].
    pub fn deregister(&mut self, rkey: RKey) -> bool {
        self.regions.remove(&rkey).is_some()
    }

    /// Number of live registrations.
    pub fn len(&self) -> usize {
        self.regions.len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.regions.is_empty()
    }

    /// Live remote keys, in deterministic ascending order.
    pub fn rkeys(&self) -> impl Iterator<Item = RKey> + '_ {
        self.regions.keys().copied()
    }

    fn lookup(&self, rkey: RKey, write: bool, offset: usize, len: usize) -> Result<Region, VerbError> {
        let reg = self.regions.get(&rkey).ok_or(VerbError::BadKey(rkey))?;
        let allowed = if write {
            reg.access.remote_write
        } else {
            reg.access.remote_read
        };
        if !allowed {
            return Err(VerbError::AccessDenied { rkey, write });
        }
        if offset + len > reg.region.len() {
            return Err(VerbError::OutOfBounds {
                offset,
                len,
                capacity: reg.region.len(),
            });
        }
        Ok(reg.region)
    }

    /// Executes an incoming RDMA WRITE: places `data` at `offset` within
    /// the region named by `rkey`.
    ///
    /// # Errors
    ///
    /// Returns a [`VerbError`] on key, permission, or bounds violations.
    pub fn rdma_write(
        &self,
        pool: &mut MemPool,
        rkey: RKey,
        offset: usize,
        data: &[u8],
    ) -> Result<(), VerbError> {
        let region = self.lookup(rkey, true, offset, data.len())?;
        pool.write(region, offset, data)
            .expect("bounds pre-checked");
        Ok(())
    }

    /// Executes an incoming RDMA READ: returns `len` bytes from `offset`
    /// within the region named by `rkey`.
    ///
    /// # Errors
    ///
    /// Returns a [`VerbError`] on key, permission, or bounds violations.
    pub fn rdma_read(
        &self,
        pool: &MemPool,
        rkey: RKey,
        offset: usize,
        len: usize,
    ) -> Result<Bytes, VerbError> {
        let region = self.lookup(rkey, false, offset, len)?;
        Ok(pool.read(region, offset, len).expect("bounds pre-checked"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (MemPool, ProtectionDomain, Region) {
        let mut pool = MemPool::new("host", 4096);
        let region = pool.alloc(1024).unwrap();
        (pool, ProtectionDomain::new(), region)
    }

    #[test]
    fn write_then_read_roundtrip() {
        let (mut pool, mut pd, region) = setup();
        let rkey = pd.register(region, Access::READ_WRITE);
        pd.rdma_write(&mut pool, rkey, 100, b"one-sided").unwrap();
        let got = pd.rdma_read(&pool, rkey, 100, 9).unwrap();
        assert_eq!(&got[..], b"one-sided");
    }

    #[test]
    fn read_only_region_rejects_writes() {
        let (mut pool, mut pd, region) = setup();
        let rkey = pd.register(region, Access::READ_ONLY);
        let err = pd.rdma_write(&mut pool, rkey, 0, b"x").unwrap_err();
        assert_eq!(err, VerbError::AccessDenied { rkey, write: true });
        // Reads still work.
        assert!(pd.rdma_read(&pool, rkey, 0, 8).is_ok());
    }

    #[test]
    fn local_only_region_rejects_everything_remote() {
        let (mut pool, mut pd, region) = setup();
        let rkey = pd.register(region, Access::LOCAL_ONLY);
        assert!(pd.rdma_write(&mut pool, rkey, 0, b"x").is_err());
        assert!(pd.rdma_read(&pool, rkey, 0, 1).is_err());
    }

    #[test]
    fn bounds_are_enforced() {
        let (mut pool, mut pd, region) = setup();
        let rkey = pd.register(region, Access::READ_WRITE);
        let err = pd.rdma_write(&mut pool, rkey, 1020, &[0; 8]).unwrap_err();
        assert_eq!(
            err,
            VerbError::OutOfBounds {
                offset: 1020,
                len: 8,
                capacity: 1024
            }
        );
        assert!(pd.rdma_read(&pool, rkey, 1024, 1).is_err());
    }

    #[test]
    fn deregistration_invalidates_key() {
        let (pool, mut pd, region) = setup();
        let rkey = pd.register(region, Access::READ_WRITE);
        assert!(pd.deregister(rkey));
        assert!(!pd.deregister(rkey));
        assert_eq!(pd.rdma_read(&pool, rkey, 0, 1), Err(VerbError::BadKey(rkey)));
        assert!(pd.is_empty());
    }

    #[test]
    fn keys_are_unique_per_registration() {
        let (mut pool, mut pd, _) = setup();
        let r1 = pool.alloc(64).unwrap();
        let r2 = pool.alloc(64).unwrap();
        let k1 = pd.register(r1, Access::READ_WRITE);
        let k2 = pd.register(r2, Access::READ_WRITE);
        assert_ne!(k1, k2);
        assert_eq!(pd.len(), 2);
        // Writes through one key do not touch the other region.
        pd.rdma_write(&mut pool, k1, 0, &[7; 64]).unwrap();
        let other = pd.rdma_read(&pool, k2, 0, 64).unwrap();
        assert!(other.iter().all(|&b| b == 0));
    }
}
