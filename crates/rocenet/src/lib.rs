//! # rocenet — simulated RoCE transport with application-aware message split
//!
//! A functional model of the network layer the SmartDS prototype implements
//! in FPGA logic:
//!
//! * [`MemPool`] / [`Region`] — host and device address spaces with real
//!   bytes (the paper's `host_alloc` / `dev_alloc`).
//! * [`Message`] — zero-copy byte ropes for RDMA messages.
//! * [`QueuePair`] — reliable-connection send queues with structural
//!   in-order delivery.
//! * [`aams`] — the Split and Assemble modules plus the per-QP
//!   [`RecvTable`], implementing message-granularity header/payload split
//!   exactly as §4.1 describes.
//! * [`rc`] — the reliable-connection wire protocol itself: MTU
//!   packetization, 24-bit PSNs, cumulative ACKs, go-back-N NAK recovery,
//!   and RNR handling, property-tested for exactly-once in-order delivery
//!   under arbitrary loss.
//! * [`verbs`] — one-sided RDMA: protection domains, rkey registration,
//!   and permission-checked remote WRITE/READ (the Figure 4 access mode).
//! * [`endpoint`] — the composed NIC: per-QP RC state machines feeding the
//!   Split module, tested end to end across a lossy wire.
//!
//! Timing (wire serialization, PCIe DMA, HBM writes) is charged by the
//! cluster driver in the `smartds` crate using `hwmodel` resources; this
//! crate guarantees the *semantics*: split ∘ assemble is the identity, QPs
//! deliver in order, and every placement is bounds-checked.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aams;
pub mod endpoint;
mod mem;
mod message;
mod qp;
pub mod rc;
pub mod trace;
pub mod verbs;

pub use aams::{
    assemble_from, split_into, AamsError, RecvDesc, RecvTable, SendDesc, SplitPlacement,
};
pub use mem::{MemError, MemPool, Region};
pub use message::Message;
pub use qp::{PostedSend, QpAddr, QueuePair};

/// A completion event reported to the application (the `poll(event)` side
/// of the paper's API).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Completion {
    /// The work-request id of the completed operation.
    pub wr_id: u64,
    /// Bytes received/sent/produced by the operation.
    pub len: usize,
    /// What completed.
    pub kind: CompletionKind,
}

/// The kind of completed operation.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum CompletionKind {
    /// A (possibly split) receive finished placing its message.
    Recv,
    /// A (possibly assembled) send left the node and was acknowledged.
    Send,
    /// An offloaded engine function finished (`dev_func`).
    Engine,
}
