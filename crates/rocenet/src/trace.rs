//! Traced wrappers around the Split/Assemble and RC wire hot paths.
//!
//! Each wrapper performs exactly the same functional operation as its
//! untraced counterpart and additionally emits one tracekit span describing
//! what moved: byte counts from the real message sizes, notes for the
//! interesting outcomes (`split-error`, `retransmit`, `duplicate`, `nak`).
//! With a disabled tracer every span call is a no-op, so drivers can route
//! all traffic through these wrappers unconditionally.

use crate::aams::{assemble_from, split_into, AamsError, RecvDesc, SendDesc, SplitPlacement};
use crate::mem::MemPool;
use crate::message::Message;
use crate::rc::{Control, DataPacket, RcReceiver, RcSender, RxAction};
use simkit::Time;
use tracekit::{SpanId, StageKind, TraceId, Tracer};

/// [`split_into`] with a `Split` span recording message size and placement.
#[allow(clippy::too_many_arguments)]
pub fn split_into_traced(
    msg: &Message,
    desc: &RecvDesc,
    host: &mut MemPool,
    dev: &mut MemPool,
    tracer: &mut Tracer,
    trace: TraceId,
    parent: SpanId,
    now: Time,
) -> Result<SplitPlacement, AamsError> {
    let sid = tracer.span_open(trace, parent, StageKind::Split, "aams-split", msg.len() as u64, now);
    let out = split_into(msg, desc, host, dev);
    match &out {
        Ok(placed) if placed.dev_bytes == 0 => tracer.span_note(sid, "host-only"),
        Ok(_) => {}
        Err(_) => tracer.span_note(sid, "split-error"),
    }
    tracer.span_close(sid, now);
    out
}

/// [`assemble_from`] with an `Assemble` span recording the gathered bytes.
pub fn assemble_from_traced(
    desc: &SendDesc,
    host: &MemPool,
    dev: &MemPool,
    tracer: &mut Tracer,
    trace: TraceId,
    parent: SpanId,
    now: Time,
) -> Result<Message, AamsError> {
    let bytes = (desc.h_size + desc.d_size) as u64;
    let sid = tracer.span_open(trace, parent, StageKind::Assemble, "aams-assemble", bytes, now);
    let out = assemble_from(desc, host, dev);
    if out.is_err() {
        tracer.span_note(sid, "assemble-error");
    }
    tracer.span_close(sid, now);
    out
}

/// [`RcSender::poll_tx`] with an `RcTx` span per emitted packet, noting
/// go-back-N retransmissions.
pub fn poll_tx_traced(
    tx: &mut RcSender,
    tracer: &mut Tracer,
    trace: TraceId,
    parent: SpanId,
    now: Time,
) -> Option<DataPacket> {
    // A fresh packet grows the in-flight window; a go-back-N replay of an
    // already-sent packet leaves it unchanged.
    let before = tx.in_flight();
    let pkt = tx.poll_tx();
    if let Some(p) = &pkt {
        let sid =
            tracer.span_open(trace, parent, StageKind::RcTx, "rc-tx", p.payload.len() as u64, now);
        if tx.in_flight() == before {
            tracer.span_note(sid, "retransmit");
        }
        tracer.span_close(sid, now);
    }
    pkt
}

/// [`RcReceiver::on_packet`] with an `RcRx` span per packet, noting
/// duplicates, NAKs, RNR pushback, and message delivery.
pub fn on_packet_traced(
    rx: &mut RcReceiver,
    pkt: &DataPacket,
    tracer: &mut Tracer,
    trace: TraceId,
    parent: SpanId,
    now: Time,
) -> RxAction {
    let dups = rx.duplicates();
    let act = rx.on_packet(pkt);
    let sid =
        tracer.span_open(trace, parent, StageKind::RcRx, "rc-rx", pkt.payload.len() as u64, now);
    if rx.duplicates() > dups {
        tracer.span_note(sid, "duplicate");
    }
    match &act {
        RxAction::Reply(Control::Nak { .. }) => tracer.span_note(sid, "nak"),
        RxAction::Reply(Control::RnrNak { .. }) => tracer.span_note(sid, "rnr"),
        RxAction::Reply(Control::Ack(_)) => {}
        RxAction::Deliver { .. } => tracer.span_note(sid, "deliver"),
    }
    tracer.span_close(sid, now);
    act
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rc::Psn;
    use tracekit::TraceConfig;

    fn t(us: f64) -> Time {
        Time::from_us(us)
    }

    #[test]
    fn wire_spans_note_drops_and_duplicates() {
        let mut tracer = Tracer::new(7, TraceConfig::default());
        let trace = tracer.trace_for(0);
        let mut tx = RcSender::new(1024, 8, Psn::new(0));
        let mut rx = RcReceiver::new(Psn::new(0), 4);
        tx.post(1, Message::from_bytes(vec![0xAB; 3000]));
        let mut clock = 0.0;
        let mut sent = Vec::new();
        while let Some(p) = poll_tx_traced(&mut tx, &mut tracer, trace, SpanId::NULL, t(clock)) {
            clock += 1.0;
            sent.push(p);
        }
        assert_eq!(sent.len(), 3, "3000 B over 1024 B MTU is 3 packets");
        // Drop the middle packet; deliver 1st and 3rd, then replay on NAK.
        for (i, p) in sent.iter().enumerate() {
            if i == 1 {
                continue;
            }
            let act = on_packet_traced(&mut rx, p, &mut tracer, trace, SpanId::NULL, t(clock));
            clock += 1.0;
            if let RxAction::Reply(ctrl) = act {
                tx.on_control(ctrl);
            }
        }
        // The NAK rewound the sender: replay everything still in flight.
        let mut delivered = false;
        while let Some(p) = poll_tx_traced(&mut tx, &mut tracer, trace, SpanId::NULL, t(clock)) {
            clock += 1.0;
            let act = on_packet_traced(&mut rx, &p, &mut tracer, trace, SpanId::NULL, t(clock));
            match act {
                RxAction::Reply(ctrl) => tx.on_control(ctrl),
                RxAction::Deliver { msg, reply, .. } => {
                    assert_eq!(msg.len(), 3000);
                    tx.on_control(reply);
                    delivered = true;
                }
            }
        }
        assert!(delivered, "message must be delivered after recovery");
        let notes: Vec<&str> = tracer.spans().flat_map(|s| s.notes.iter().copied()).collect();
        assert!(notes.contains(&"retransmit"), "notes: {notes:?}");
        assert!(notes.contains(&"nak"), "notes: {notes:?}");
        assert!(notes.contains(&"deliver"), "notes: {notes:?}");
        assert!(
            tracer.spans().all(|s| s.kind == StageKind::RcTx || s.kind == StageKind::RcRx),
            "only wire spans emitted here"
        );
    }

    #[test]
    fn split_and_assemble_spans_carry_byte_counts() {
        let mut tracer = Tracer::new(7, TraceConfig::default());
        let trace = tracer.trace_for(0);
        let mut host = MemPool::new("host", 1 << 12);
        let mut dev = MemPool::new("dev", 1 << 16);
        let h_buf = host.alloc(64).expect("host alloc");
        let d_buf = dev.alloc(4096).expect("dev alloc");
        let msg = Message::header_payload(vec![1; 64], vec![2; 4096]);
        let desc = RecvDesc::split(9, h_buf, 64, d_buf);
        let placed = split_into_traced(
            &msg,
            &desc,
            &mut host,
            &mut dev,
            &mut tracer,
            trace,
            SpanId::NULL,
            t(1.0),
        )
        .expect("split ok");
        assert_eq!(placed.dev_bytes, 4096);
        let send = SendDesc {
            wr_id: 9,
            h_buf,
            h_size: 64,
            d_buf: Some(d_buf),
            d_size: 4096,
        };
        let out =
            assemble_from_traced(&send, &host, &dev, &mut tracer, trace, SpanId::NULL, t(2.0))
                .expect("assemble ok");
        assert_eq!(out.to_bytes(), msg.to_bytes());
        let spans: Vec<_> = tracer.spans().collect();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].kind, StageKind::Split);
        assert_eq!(spans[0].bytes, 64 + 4096);
        assert_eq!(spans[1].kind, StageKind::Assemble);
        assert_eq!(spans[1].bytes, 64 + 4096);
    }
}
