//! A complete RoCE endpoint: queue pairs running the RC wire protocol with
//! AAMS placement at the receive side.
//!
//! This composes the crate's layers the way the SmartDS hardware does
//! (Figure 5): per-QP [`RcSender`]/[`RcReceiver`] state machines provide
//! reliability, and every fully reassembled message is placed through the
//! Split module against the QP's posted [`RecvDesc`]s — header bytes into
//! the host pool, payload bytes into the device pool. The unit tests run
//! two endpoints against each other over a lossy wire and verify split
//! placements byte-for-byte.
//!
//! **Wakeup discipline.** Endpoints are driven entirely by explicit
//! packet/timer events from the surrounding driver — they own no
//! [`simkit::FluidResource`] and therefore schedule no fluid wakeups.
//! All fluid arming in the system goes through the per-resource
//! [`simkit::wake::WakeCoalescer`] in the cluster driver, which keeps at
//! most one armed heap entry per resource; keeping this crate
//! wakeup-free is what makes that invariant checkable in one place.

use crate::aams::{split_into, AamsError, RecvDesc, RecvTable, SplitPlacement};
use crate::mem::MemPool;
use crate::message::Message;
use crate::rc::{Control, DataPacket, Psn, RcReceiver, RcSender, RxAction};
use std::collections::BTreeMap;

/// A queue pair number local to one endpoint.
pub type Qpn = u32;

/// Events an endpoint reports upward after digesting wire input.
#[derive(Debug, PartialEq, Eq)]
pub enum EndpointEvent {
    /// A send completed (final packet acknowledged).
    SendDone {
        /// The QP it completed on.
        qpn: Qpn,
        /// The work-request id given to [`Endpoint::post_send`].
        wr_id: u64,
    },
    /// A message arrived and was split-placed per the posted descriptor.
    RecvDone {
        /// The QP it arrived on.
        qpn: Qpn,
        /// Where the bytes went.
        placement: SplitPlacement,
    },
    /// A message arrived but could not be placed (no descriptor posted or
    /// descriptor too small). The message is dropped at the application
    /// layer; transport-level delivery already succeeded.
    RecvError {
        /// The QP it arrived on.
        qpn: Qpn,
        /// Why placement failed.
        error: AamsError,
    },
}

struct QpState {
    tx: RcSender,
    rx: RcReceiver,
}

/// One node's RoCE instance: QPs + descriptor table + memory pools.
///
/// Queue pairs live in a `BTreeMap`: any whole-endpoint sweep (idle polls,
/// metrics, [`Endpoint::qpns`]) visits QPs in numeric order, keeping
/// simulation reports byte-identical run to run.
pub struct Endpoint {
    qps: BTreeMap<Qpn, QpState>,
    recv_table: RecvTable,
    /// Host memory (headers land here).
    pub host: MemPool,
    /// Device memory (payloads land here).
    pub dev: MemPool,
    mtu: usize,
    window: usize,
}

impl Endpoint {
    /// An endpoint with the given pools and transport parameters.
    pub fn new(host: MemPool, dev: MemPool, mtu: usize, window: usize) -> Self {
        Endpoint {
            qps: BTreeMap::new(),
            recv_table: RecvTable::new(),
            host,
            dev,
            mtu,
            window,
        }
    }

    /// Creates (connects) queue pair `qpn`. Both sides must use the same
    /// initial PSN, as the RC handshake establishes.
    ///
    /// # Panics
    ///
    /// Panics if `qpn` already exists.
    pub fn create_qp(&mut self, qpn: Qpn, initial_psn: Psn) {
        let prev = self.qps.insert(
            qpn,
            QpState {
                tx: RcSender::new(self.mtu, self.window, initial_psn),
                rx: RcReceiver::new(initial_psn, usize::MAX / 2),
            },
        );
        assert!(prev.is_none(), "qp {qpn} already exists");
    }

    /// Posts a receive descriptor for `qpn` (the `dev_mixed_recv` half).
    pub fn post_recv(&mut self, qpn: Qpn, desc: RecvDesc) {
        self.recv_table.post(qpn, desc);
    }

    /// Posts a message send on `qpn` (the `dev_mixed_send` half, already
    /// assembled).
    ///
    /// # Panics
    ///
    /// Panics for an unknown QP.
    pub fn post_send(&mut self, qpn: Qpn, wr_id: u64, msg: Message) {
        self.qps
            .get_mut(&qpn)
            .unwrap_or_else(|| panic!("unknown qp {qpn}"))
            .tx
            .post(wr_id, msg);
    }

    /// Pulls the next data packet to transmit on `qpn`, if any.
    pub fn poll_tx(&mut self, qpn: Qpn) -> Option<DataPacket> {
        self.qps.get_mut(&qpn)?.tx.poll_tx()
    }

    /// Delivers a data packet from the wire; returns the control reply to
    /// send back plus any application events.
    ///
    /// # Panics
    ///
    /// Panics for an unknown QP.
    pub fn on_data(&mut self, qpn: Qpn, pkt: &DataPacket) -> (Control, Vec<EndpointEvent>) {
        let qp = self
            .qps
            .get_mut(&qpn)
            .unwrap_or_else(|| panic!("unknown qp {qpn}"));
        match qp.rx.on_packet(pkt) {
            RxAction::Reply(c) => (c, Vec::new()),
            RxAction::Deliver { msg, reply, .. } => {
                let ev = match self.recv_table.take(qpn) {
                    Err(e) => EndpointEvent::RecvError { qpn, error: e },
                    Ok(desc) => {
                        match split_into(&msg, &desc, &mut self.host, &mut self.dev) {
                            Ok(placement) => EndpointEvent::RecvDone { qpn, placement },
                            Err(error) => EndpointEvent::RecvError { qpn, error },
                        }
                    }
                };
                (reply, vec![ev])
            }
        }
    }

    /// Delivers a control packet from the wire; returns completed sends.
    ///
    /// # Panics
    ///
    /// Panics for an unknown QP.
    pub fn on_control(&mut self, qpn: Qpn, ctrl: Control) -> Vec<EndpointEvent> {
        let qp = self
            .qps
            .get_mut(&qpn)
            .unwrap_or_else(|| panic!("unknown qp {qpn}"));
        qp.tx.on_control(ctrl);
        qp.tx
            .take_completed()
            .into_iter()
            .map(|wr_id| EndpointEvent::SendDone { qpn, wr_id })
            .collect()
    }

    /// Retransmission timeout on `qpn`.
    ///
    /// # Panics
    ///
    /// Panics for an unknown QP.
    pub fn on_timeout(&mut self, qpn: Qpn) {
        self.qps
            .get_mut(&qpn)
            .unwrap_or_else(|| panic!("unknown qp {qpn}"))
            .tx
            .on_timeout();
    }

    /// True when `qpn` has nothing queued or in flight.
    pub fn is_idle(&self, qpn: Qpn) -> bool {
        self.qps.get(&qpn).is_none_or(|q| q.tx.is_idle())
    }

    /// Connected queue pairs, in deterministic ascending order.
    pub fn qpns(&self) -> impl Iterator<Item = Qpn> + '_ {
        self.qps.keys().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aams::SendDesc;
    use crate::assemble_from;

    fn endpoint() -> Endpoint {
        Endpoint::new(
            MemPool::new("host", 1 << 16),
            MemPool::new("dev", 1 << 20),
            1024,
            4,
        )
    }

    /// Shuttles packets between two endpoints on one QP until both idle,
    /// dropping data packets whose index is in `drops`.
    fn shuttle(a: &mut Endpoint, b: &mut Endpoint, qpn: Qpn, drops: &[u64]) -> Vec<EndpointEvent> {
        let mut events = Vec::new();
        let mut sent = 0u64;
        let mut idle_rounds = 0;
        fn step(
            tx: &mut Endpoint,
            rx: &mut Endpoint,
            qpn: Qpn,
            drops: &[u64],
            sent: &mut u64,
            events: &mut Vec<EndpointEvent>,
        ) -> bool {
            let Some(pkt) = tx.poll_tx(qpn) else {
                return false;
            };
            *sent += 1;
            if drops.contains(sent) {
                return true; // lost on the wire
            }
            let (ctrl, mut evs) = rx.on_data(qpn, &pkt);
            events.append(&mut evs);
            events.append(&mut tx.on_control(qpn, ctrl));
            true
        }
        while !(a.is_idle(qpn) && b.is_idle(qpn)) {
            let mut progress = false;
            progress |= step(a, b, qpn, drops, &mut sent, &mut events);
            progress |= step(b, a, qpn, drops, &mut sent, &mut events);
            if !progress {
                idle_rounds += 1;
                assert!(idle_rounds < 16, "livelock");
                a.on_timeout(qpn);
                b.on_timeout(qpn);
            } else {
                idle_rounds = 0;
            }
        }
        events
    }

    #[test]
    fn end_to_end_split_placement_over_the_wire() {
        let mut a = endpoint();
        let mut b = endpoint();
        a.create_qp(1, Psn::new(0));
        b.create_qp(1, Psn::new(0));
        // Receiver posts a split descriptor: 64 B header → host, rest → dev.
        let h = b.host.alloc(64).unwrap();
        let d = b.dev.alloc(8192).unwrap();
        b.post_recv(1, RecvDesc::split(9, h, 64, d));
        // Sender posts a 64 B + 4 KiB message (crosses several MTUs).
        let msg = Message::header_payload(vec![0xAA; 64], vec![0xBB; 4096]);
        a.post_send(1, 7, msg);
        let events = shuttle(&mut a, &mut b, 1, &[]);
        assert!(events.contains(&EndpointEvent::SendDone { qpn: 1, wr_id: 7 }));
        let placed = events
            .iter()
            .find_map(|e| match e {
                EndpointEvent::RecvDone { placement, .. } => Some(placement.clone()),
                _ => None,
            })
            .expect("placement event");
        assert_eq!(placed.host_bytes, 64);
        assert_eq!(placed.dev_bytes, 4096);
        assert!(b.host.read(h, 0, 64).unwrap().iter().all(|&x| x == 0xAA));
        assert!(b.dev.read(d, 0, 4096).unwrap().iter().all(|&x| x == 0xBB));
    }

    #[test]
    fn split_placement_survives_packet_loss() {
        let mut a = endpoint();
        let mut b = endpoint();
        a.create_qp(1, Psn::new(500));
        b.create_qp(1, Psn::new(500));
        let h = b.host.alloc(64).unwrap();
        let d = b.dev.alloc(8192).unwrap();
        b.post_recv(1, RecvDesc::split(1, h, 64, d));
        let payload: Vec<u8> = (0..4096u32).map(|i| (i % 251) as u8).collect();
        a.post_send(1, 1, Message::header_payload(vec![5; 64], payload.clone()));
        // Drop the 2nd and 4th packets on the wire.
        let events = shuttle(&mut a, &mut b, 1, &[2, 4]);
        assert!(events
            .iter()
            .any(|e| matches!(e, EndpointEvent::RecvDone { .. })));
        assert_eq!(&b.dev.read(d, 0, 4096).unwrap()[..], &payload[..]);
    }

    #[test]
    fn missing_descriptor_surfaces_as_recv_error() {
        let mut a = endpoint();
        let mut b = endpoint();
        a.create_qp(2, Psn::new(0));
        b.create_qp(2, Psn::new(0));
        a.post_send(2, 1, Message::from_bytes(vec![1; 128]));
        let events = shuttle(&mut a, &mut b, 2, &[]);
        assert!(events.iter().any(|e| matches!(
            e,
            EndpointEvent::RecvError {
                error: AamsError::ReceiverNotReady,
                ..
            }
        )));
    }

    #[test]
    fn assembled_send_splits_back_identically() {
        // Full AAMS circle: assemble from two pools on node A, wire-transfer,
        // split into two pools on node B.
        let mut a = endpoint();
        let mut b = endpoint();
        a.create_qp(3, Psn::new(0));
        b.create_qp(3, Psn::new(0));
        let ah = a.host.alloc(64).unwrap();
        let ad = a.dev.alloc(2000).unwrap();
        a.host.write(ah, 0, &[9u8; 64]).unwrap();
        let payload: Vec<u8> = (0..2000u32).map(|i| (i % 199) as u8).collect();
        a.dev.write(ad, 0, &payload).unwrap();
        let msg = assemble_from(
            &SendDesc {
                wr_id: 0,
                h_buf: ah,
                h_size: 64,
                d_buf: Some(ad),
                d_size: 2000,
            },
            &a.host,
            &a.dev,
        )
        .unwrap();
        let bh = b.host.alloc(64).unwrap();
        let bd = b.dev.alloc(4096).unwrap();
        b.post_recv(3, RecvDesc::split(0, bh, 64, bd));
        a.post_send(3, 0, msg);
        shuttle(&mut a, &mut b, 3, &[1]);
        assert!(b.host.read(bh, 0, 64).unwrap().iter().all(|&x| x == 9));
        assert_eq!(&b.dev.read(bd, 0, 2000).unwrap()[..], &payload[..]);
    }
}
