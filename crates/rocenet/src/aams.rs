//! Application-aware message split (AAMS): the Split and Assemble modules.
//!
//! This is the paper's key mechanism (§4.1). A *recv descriptor* names a
//! host buffer (`h_buf`/`h_size`) and a device buffer (`d_buf`/`d_size`);
//! when a message arrives, the **Split module** writes its first `h_size`
//! bytes (the block-storage header, which needs flexible CPU processing)
//! into host memory and the remainder (the payload, which needs fixed heavy
//! computation) into device memory. A *send descriptor* names the same two
//! buffers and the **Assemble module** gathers them back into one wire
//! message. Split ∘ Assemble is the identity on message bytes — property
//! tested in `tests/aams_props.rs`.
//!
//! The modules here perform the *functional* byte movement and validation;
//! the driver charges the corresponding PCIe/HBM transfer times.

use crate::mem::{MemError, MemPool, Region};
use crate::message::Message;
use std::error::Error;
use std::fmt;

/// A receive descriptor posted to the Split module's table
/// (`dev_mixed_recv` in the paper's API, Table 2).
#[derive(Copy, Clone, Debug)]
pub struct RecvDesc {
    /// Work-request id returned in the completion.
    pub wr_id: u64,
    /// Host buffer for the message's first `h_size` bytes.
    pub h_buf: Region,
    /// How many leading bytes go to the host (the header size).
    pub h_size: usize,
    /// Device buffer for the remainder. `None` for a conventional recv that
    /// places the whole message in host memory (the baselines' path).
    pub d_buf: Option<Region>,
    /// Capacity reserved in `d_buf`.
    pub d_size: usize,
}

impl RecvDesc {
    /// A conventional (non-split) receive: the entire message lands in the
    /// host buffer.
    pub fn host_only(wr_id: u64, h_buf: Region) -> Self {
        RecvDesc {
            wr_id,
            h_size: h_buf.len(),
            h_buf,
            d_buf: None,
            d_size: 0,
        }
    }

    /// A split receive: first `h_size` bytes to `h_buf`, remainder to
    /// `d_buf`.
    pub fn split(wr_id: u64, h_buf: Region, h_size: usize, d_buf: Region) -> Self {
        RecvDesc {
            wr_id,
            h_size,
            h_buf,
            d_size: d_buf.len(),
            d_buf: Some(d_buf),
        }
    }
}

/// A send descriptor for the Assemble module (`dev_mixed_send`).
#[derive(Copy, Clone, Debug)]
pub struct SendDesc {
    /// Work-request id returned in the completion.
    pub wr_id: u64,
    /// Host buffer holding the message prefix (header).
    pub h_buf: Region,
    /// Bytes to gather from `h_buf`.
    pub h_size: usize,
    /// Device buffer holding the payload. `None` for host-only sends.
    pub d_buf: Option<Region>,
    /// Bytes to gather from `d_buf`.
    pub d_size: usize,
}

/// Where the Split module placed an arriving message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SplitPlacement {
    /// The matched descriptor's work-request id.
    pub wr_id: u64,
    /// Bytes written to host memory (≤ `h_size`).
    pub host_bytes: usize,
    /// Bytes written to device memory.
    pub dev_bytes: usize,
}

/// Errors raised by the Split/Assemble modules.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum AamsError {
    /// No receive descriptor was posted for the arriving message
    /// (receiver-not-ready).
    ReceiverNotReady,
    /// The message exceeds the descriptor's combined capacity.
    MessageTooLong {
        /// Arriving message length.
        msg_len: usize,
        /// Host + device capacity of the descriptor.
        capacity: usize,
    },
    /// A buffer access failed (offset bug in the descriptor).
    Memory(MemError),
}

impl fmt::Display for AamsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AamsError::ReceiverNotReady => write!(f, "no receive descriptor posted"),
            AamsError::MessageTooLong { msg_len, capacity } => {
                write!(f, "message of {msg_len} bytes exceeds capacity {capacity}")
            }
            AamsError::Memory(e) => write!(f, "buffer access failed: {e}"),
        }
    }
}

impl Error for AamsError {}

impl From<MemError> for AamsError {
    fn from(e: MemError) -> Self {
        AamsError::Memory(e)
    }
}

/// Splits an arriving `msg` according to `desc`, writing header bytes into
/// `host` and payload bytes into `dev`.
///
/// # Errors
///
/// * [`AamsError::MessageTooLong`] if the message exceeds
///   `h_size + d_size` (or `h_size` for a host-only descriptor).
/// * [`AamsError::Memory`] if a descriptor region is invalid.
pub fn split_into(
    msg: &Message,
    desc: &RecvDesc,
    host: &mut MemPool,
    dev: &mut MemPool,
) -> Result<SplitPlacement, AamsError> {
    let capacity = desc.h_size + desc.d_buf.map_or(0, |_| desc.d_size);
    if msg.len() > capacity {
        return Err(AamsError::MessageTooLong {
            msg_len: msg.len(),
            capacity,
        });
    }
    let mut m = msg.clone();
    let head = m.split_prefix(desc.h_size);
    host.write(desc.h_buf, 0, &head.to_bytes())?;
    let dev_bytes = m.len();
    if dev_bytes > 0 {
        let d_buf = desc.d_buf.expect("capacity check guarantees d_buf");
        dev.write(d_buf, 0, &m.to_bytes())?;
    }
    Ok(SplitPlacement {
        wr_id: desc.wr_id,
        host_bytes: head.len(),
        dev_bytes,
    })
}

/// Assembles an outgoing message per `desc`, gathering `h_size` bytes from
/// host memory and `d_size` bytes from device memory.
///
/// # Errors
///
/// Returns [`AamsError::Memory`] if a region read is out of bounds.
pub fn assemble_from(
    desc: &SendDesc,
    host: &MemPool,
    dev: &MemPool,
) -> Result<Message, AamsError> {
    let mut msg = Message::new();
    if desc.h_size > 0 {
        msg.append(host.read(desc.h_buf, 0, desc.h_size)?);
    }
    if desc.d_size > 0 {
        let d_buf = desc.d_buf.ok_or(MemError::OutOfBounds)?;
        msg.append(dev.read(d_buf, 0, desc.d_size)?);
    }
    Ok(msg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pools() -> (MemPool, MemPool) {
        (MemPool::new("host", 1 << 16), MemPool::new("dev", 1 << 20))
    }

    #[test]
    fn split_places_header_and_payload() {
        let (mut host, mut dev) = pools();
        let h_buf = host.alloc(64).unwrap();
        let d_buf = dev.alloc(4096).unwrap();
        let msg = Message::header_payload(vec![0xAA; 64], vec![0xBB; 4096]);
        let desc = RecvDesc::split(1, h_buf, 64, d_buf);
        let placed = split_into(&msg, &desc, &mut host, &mut dev).unwrap();
        assert_eq!(
            placed,
            SplitPlacement {
                wr_id: 1,
                host_bytes: 64,
                dev_bytes: 4096
            }
        );
        assert!(host.read(h_buf, 0, 64).unwrap().iter().all(|&b| b == 0xAA));
        assert!(dev.read(d_buf, 0, 4096).unwrap().iter().all(|&b| b == 0xBB));
    }

    #[test]
    fn short_message_goes_entirely_to_host() {
        let (mut host, mut dev) = pools();
        let h_buf = host.alloc(64).unwrap();
        let d_buf = dev.alloc(128).unwrap();
        let msg = Message::from_bytes(vec![1u8; 40]);
        let desc = RecvDesc::split(2, h_buf, 64, d_buf);
        let placed = split_into(&msg, &desc, &mut host, &mut dev).unwrap();
        assert_eq!(placed.host_bytes, 40);
        assert_eq!(placed.dev_bytes, 0);
    }

    #[test]
    fn oversized_message_rejected() {
        let (mut host, mut dev) = pools();
        let h_buf = host.alloc(64).unwrap();
        let d_buf = dev.alloc(100).unwrap();
        let msg = Message::from_bytes(vec![0u8; 200]);
        let desc = RecvDesc::split(3, h_buf, 64, d_buf);
        let err = split_into(&msg, &desc, &mut host, &mut dev).unwrap_err();
        assert_eq!(
            err,
            AamsError::MessageTooLong {
                msg_len: 200,
                capacity: 164
            }
        );
    }

    #[test]
    fn host_only_descriptor_behaves_like_plain_recv() {
        let (mut host, mut dev) = pools();
        let h_buf = host.alloc(8192).unwrap();
        let msg = Message::header_payload(vec![5u8; 64], vec![6u8; 4096]);
        let desc = RecvDesc::host_only(4, h_buf);
        let placed = split_into(&msg, &desc, &mut host, &mut dev).unwrap();
        assert_eq!(placed.host_bytes, 4160);
        assert_eq!(placed.dev_bytes, 0);
    }

    #[test]
    fn assemble_reverses_split() {
        let (mut host, mut dev) = pools();
        let h_buf = host.alloc(64).unwrap();
        let d_buf = dev.alloc(4096).unwrap();
        let original = Message::header_payload(
            (0u8..64).collect::<Vec<_>>(),
            (0u8..=255).cycle().take(4096).collect::<Vec<_>>(),
        );
        let rdesc = RecvDesc::split(1, h_buf, 64, d_buf);
        let placed = split_into(&original, &rdesc, &mut host, &mut dev).unwrap();
        let sdesc = SendDesc {
            wr_id: 2,
            h_buf,
            h_size: placed.host_bytes,
            d_buf: Some(d_buf),
            d_size: placed.dev_bytes,
        };
        let rebuilt = assemble_from(&sdesc, &host, &dev).unwrap();
        assert_eq!(rebuilt.to_bytes(), original.to_bytes());
    }

    #[test]
    fn assemble_host_only() {
        let (mut host, dev) = pools();
        let h_buf = host.alloc(32).unwrap();
        host.write(h_buf, 0, b"hello-smartds").unwrap();
        let sdesc = SendDesc {
            wr_id: 1,
            h_buf,
            h_size: 13,
            d_buf: None,
            d_size: 0,
        };
        let m = assemble_from(&sdesc, &host, &dev).unwrap();
        assert_eq!(&m.to_bytes()[..], b"hello-smartds");
    }
}

/// The Split module's receive-descriptor table: per-QP FIFOs of posted
/// [`RecvDesc`]s, consumed in order as messages arrive.
///
/// Keyed by a `BTreeMap` so [`RecvTable::qpns`] walks queue pairs in
/// numeric order — descriptor-table sweeps must not observe hasher
/// randomization.
#[derive(Debug, Default)]
pub struct RecvTable {
    tables: std::collections::BTreeMap<u32, std::collections::VecDeque<RecvDesc>>,
}

impl RecvTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Posts a descriptor for queue pair `qpn`.
    pub fn post(&mut self, qpn: u32, desc: RecvDesc) {
        self.tables.entry(qpn).or_default().push_back(desc);
    }

    /// Pops the oldest descriptor for `qpn`.
    ///
    /// # Errors
    ///
    /// Returns [`AamsError::ReceiverNotReady`] when none is posted — the
    /// RoCE RNR condition.
    pub fn take(&mut self, qpn: u32) -> Result<RecvDesc, AamsError> {
        self.tables
            .get_mut(&qpn)
            .and_then(|q| q.pop_front())
            .ok_or(AamsError::ReceiverNotReady)
    }

    /// Descriptors currently posted for `qpn`.
    pub fn depth(&self, qpn: u32) -> usize {
        self.tables.get(&qpn).map_or(0, |q| q.len())
    }

    /// Queue pairs that have ever had a descriptor posted, ascending.
    pub fn qpns(&self) -> impl Iterator<Item = u32> + '_ {
        self.tables.keys().copied()
    }
}

#[cfg(test)]
mod table_tests {
    use super::*;

    #[test]
    fn descriptors_match_fifo_per_qp() {
        let mut host = MemPool::new("host", 1024);
        let b = host.alloc(64).unwrap();
        let mut t = RecvTable::new();
        t.post(1, RecvDesc::host_only(10, b));
        t.post(1, RecvDesc::host_only(11, b));
        t.post(2, RecvDesc::host_only(20, b));
        assert_eq!(t.depth(1), 2);
        assert_eq!(t.take(1).unwrap().wr_id, 10);
        assert_eq!(t.take(2).unwrap().wr_id, 20);
        assert_eq!(t.take(1).unwrap().wr_id, 11);
        assert_eq!(t.take(1).unwrap_err(), AamsError::ReceiverNotReady);
    }
}
