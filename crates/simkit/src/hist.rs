//! Log-bucketed latency histograms.
//!
//! The paper reports average, 99th-percentile and 99.9th-percentile ("999th
//! per-mille") latencies. [`Histogram`] is an HDR-style histogram with
//! logarithmic major buckets and linear sub-buckets, giving a bounded
//! relative error (< 1/64 ≈ 1.6 %) over the full picosecond→hours range with
//! a few KiB of memory and O(1) recording.
//!
//! # Examples
//!
//! ```
//! use simkit::{Histogram, Time};
//!
//! let mut h = Histogram::new();
//! for us in 1..=1000 {
//!     h.record(Time::from_us(us as f64));
//! }
//! assert_eq!(h.count(), 1000);
//! let p99 = h.quantile(0.99);
//! assert!((p99.as_us() - 990.0).abs() / 990.0 < 0.02);
//! ```

use crate::time::Time;
use std::fmt;

/// Number of linear sub-buckets per power-of-two bucket (2^6).
const SUB_BITS: u32 = 6;
const SUB_COUNT: usize = 1 << SUB_BITS;
/// Major buckets cover 2^0 .. 2^63 picoseconds.
const MAJOR_COUNT: usize = 64 - SUB_BITS as usize;

/// A latency histogram with ~1.6 % relative bucket error.
#[derive(Clone)]
pub struct Histogram {
    counts: Vec<u64>,
    total: u64,
    sum_ps: u128,
    min: Time,
    max: Time,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: vec![0; MAJOR_COUNT * SUB_COUNT],
            total: 0,
            sum_ps: 0,
            min: Time::MAX,
            max: Time::ZERO,
        }
    }

    fn index(value_ps: u64) -> usize {
        // Values below SUB_COUNT land in the first major bucket linearly.
        if value_ps < SUB_COUNT as u64 {
            return value_ps as usize;
        }
        let msb = 63 - value_ps.leading_zeros();
        let major = (msb - SUB_BITS + 1) as usize;
        let shift = msb - SUB_BITS;
        let sub = ((value_ps >> shift) - SUB_COUNT as u64) as usize;
        debug_assert!(sub < SUB_COUNT);
        (major * SUB_COUNT + sub).min(MAJOR_COUNT * SUB_COUNT - 1)
    }

    /// Lower bound of a bucket, used when reading quantiles back out.
    fn bucket_floor(index: usize) -> u64 {
        let major = index / SUB_COUNT;
        let sub = (index % SUB_COUNT) as u64;
        if major == 0 {
            return sub;
        }
        let shift = major as u32 + SUB_BITS - 1;
        (SUB_COUNT as u64 + sub) << (shift - SUB_BITS)
    }

    /// Records one sample.
    pub fn record(&mut self, value: Time) {
        let ps = value.as_ps();
        self.counts[Self::index(ps)] += 1;
        self.total += 1;
        self.sum_ps += ps as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// True if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Arithmetic mean of all samples ([`Time::ZERO`] when empty).
    pub fn mean(&self) -> Time {
        if self.total == 0 {
            return Time::ZERO;
        }
        Time::from_ps((self.sum_ps / self.total as u128) as u64)
    }

    /// Smallest recorded sample ([`Time::MAX`] when empty).
    pub fn min(&self) -> Time {
        self.min
    }

    /// Largest recorded sample ([`Time::ZERO`] when empty).
    pub fn max(&self) -> Time {
        self.max
    }

    /// Value at quantile `q ∈ [0, 1]` (e.g. 0.99 for p99); returns the lower
    /// bound of the containing bucket, clamped to the observed min/max.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Time {
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        if self.total == 0 {
            return Time::ZERO;
        }
        let target = ((q * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                let v = Time::from_ps(Self::bucket_floor(i));
                return v.max(self.min).min(self.max);
            }
        }
        self.max
    }

    /// Convenience accessor for the tuple the paper reports:
    /// (mean, p99, p999).
    pub fn paper_latencies(&self) -> (Time, Time, Time) {
        (self.mean(), self.quantile(0.99), self.quantile(0.999))
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += *b;
        }
        self.total += other.total;
        self.sum_ps += other.sum_ps;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Clears all samples.
    pub fn clear(&mut self) {
        self.counts.iter_mut().for_each(|c| *c = 0);
        self.total = 0;
        self.sum_ps = 0;
        self.min = Time::MAX;
        self.max = Time::ZERO;
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "Histogram(empty)");
        }
        write!(
            f,
            "Histogram(n={}, mean={}, p50={}, p99={}, p999={}, max={})",
            self.total,
            self.mean(),
            self.quantile(0.5),
            self.quantile(0.99),
            self.quantile(0.999),
            self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_behaves() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.mean(), Time::ZERO);
        assert_eq!(h.quantile(0.99), Time::ZERO);
    }

    #[test]
    fn single_sample_dominates_all_quantiles() {
        let mut h = Histogram::new();
        h.record(Time::from_us(42.0));
        for q in [0.0, 0.5, 0.99, 1.0] {
            let v = h.quantile(q);
            assert!((v.as_us() - 42.0).abs() / 42.0 < 0.02, "q={q} → {v}");
        }
        assert_eq!(h.mean(), Time::from_us(42.0));
    }

    #[test]
    fn relative_error_bounded() {
        let mut h = Histogram::new();
        let exact = Time::from_ns(12_345.0);
        h.record(exact);
        let back = h.quantile(0.5);
        let err = (back.as_ps() as f64 - exact.as_ps() as f64).abs() / exact.as_ps() as f64;
        assert!(err < 1.0 / 64.0, "relative error too large: {err}");
    }

    #[test]
    fn quantiles_are_monotone() {
        let mut h = Histogram::new();
        let mut x = 1u64;
        for i in 0..10_000u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(i);
            h.record(Time::from_ps(x % 1_000_000_000));
        }
        let mut prev = Time::ZERO;
        for i in 0..=100 {
            let v = h.quantile(i as f64 / 100.0);
            assert!(v >= prev, "quantiles must be monotone");
            prev = v;
        }
        assert!(h.quantile(1.0) <= h.max());
        assert!(h.quantile(0.0) >= h.min());
    }

    #[test]
    fn uniform_distribution_quantiles() {
        let mut h = Histogram::new();
        for us in 1..=10_000 {
            h.record(Time::from_us(us as f64));
        }
        let p50 = h.quantile(0.5).as_us();
        let p99 = h.quantile(0.99).as_us();
        let p999 = h.quantile(0.999).as_us();
        assert!((p50 - 5000.0).abs() / 5000.0 < 0.02, "p50={p50}");
        assert!((p99 - 9900.0).abs() / 9900.0 < 0.02, "p99={p99}");
        assert!((p999 - 9990.0).abs() / 9990.0 < 0.02, "p999={p999}");
    }

    #[test]
    fn merge_equals_combined_recording() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut c = Histogram::new();
        for i in 0..1000u64 {
            let v = Time::from_ps(i * i + 1);
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            c.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), c.count());
        assert_eq!(a.mean(), c.mean());
        for q in [0.1, 0.5, 0.9, 0.99] {
            assert_eq!(a.quantile(q), c.quantile(q));
        }
    }

    #[test]
    fn clear_resets() {
        let mut h = Histogram::new();
        h.record(Time::from_us(1.0));
        h.clear();
        assert!(h.is_empty());
        assert_eq!(h.max(), Time::ZERO);
    }

    #[test]
    fn index_floor_consistent() {
        // bucket_floor(index(v)) <= v for a wide range of magnitudes.
        let mut v = 1u64;
        while v < u64::MAX / 3 {
            let idx = Histogram::index(v);
            let floor = Histogram::bucket_floor(idx);
            assert!(floor <= v, "floor {floor} > value {v}");
            // And the floor maps back to the same bucket.
            assert_eq!(Histogram::index(floor), idx, "v={v}");
            v = v * 3 + 1;
        }
    }
}
