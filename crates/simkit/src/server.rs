//! FIFO multi-server queues for compute-style resources.
//!
//! A [`ServerPool`] models `k` identical servers (CPU cores, Arm cores,
//! engine contexts…) in front of a single FIFO queue — the classic M/G/k
//! station. Jobs have deterministic service times supplied by the caller;
//! contention produces queueing delay, which is where the paper's tail
//! latencies come from.
//!
//! Like [`FluidResource`](crate::FluidResource), the pool is passive: the
//! driver schedules a wakeup for each job-start the pool reports and calls
//! [`ServerPool::complete`] when the wakeup fires.
//!
//! # Examples
//!
//! ```
//! use simkit::{ServerPool, Time};
//!
//! let mut cpu = ServerPool::new("cores", 2);
//! // Three 1 µs jobs on two cores: two start now, one queues.
//! let s1 = cpu.submit(Time::ZERO, Time::from_us(1.0), 1).unwrap();
//! let s2 = cpu.submit(Time::ZERO, Time::from_us(1.0), 2).unwrap();
//! assert!(cpu.submit(Time::ZERO, Time::from_us(1.0), 3).is_none());
//! assert_eq!(s1.finish_at, Time::from_us(1.0));
//! // When job 1 finishes, job 3 starts.
//! let next = cpu.complete(s1.finish_at).unwrap();
//! assert_eq!(next.token, 3);
//! assert_eq!(next.finish_at, Time::from_us(2.0));
//! # let _ = s2;
//! ```

use crate::time::Time;
use std::collections::VecDeque;

/// A job admitted to service, to be completed at `finish_at`.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct JobStart {
    /// Caller-supplied identity of the job.
    pub token: u64,
    /// Absolute time at which service finishes; the driver must call
    /// [`ServerPool::complete`] at this instant.
    pub finish_at: Time,
}

#[derive(Copy, Clone, Debug)]
struct Queued {
    token: u64,
    service: Time,
    arrived: Time,
}

/// `k` identical servers behind one FIFO queue.
#[derive(Debug)]
pub struct ServerPool {
    name: &'static str,
    servers: usize,
    busy: usize,
    queue: VecDeque<Queued>,
    /// Cumulative busy time across servers (for utilization reporting).
    busy_time: Time,
    /// Cumulative time jobs spent waiting in the queue.
    wait_time: Time,
    jobs_done: u64,
}

impl ServerPool {
    /// Creates a pool of `servers` identical servers.
    ///
    /// # Panics
    ///
    /// Panics if `servers` is zero.
    pub fn new(name: &'static str, servers: usize) -> Self {
        assert!(servers > 0, "server pool needs at least one server");
        ServerPool {
            name,
            servers,
            busy: 0,
            queue: VecDeque::new(),
            busy_time: Time::ZERO,
            wait_time: Time::ZERO,
            jobs_done: 0,
        }
    }

    /// The pool's display name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Total number of servers.
    pub fn servers(&self) -> usize {
        self.servers
    }

    /// Servers currently serving a job.
    pub fn busy(&self) -> usize {
        self.busy
    }

    /// Jobs waiting in the queue (excluding those in service).
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Completed job count.
    pub fn jobs_done(&self) -> u64 {
        self.jobs_done
    }

    /// Cumulative server busy time (divide by `servers × elapsed` for
    /// utilization).
    pub fn busy_time(&self) -> Time {
        self.busy_time
    }

    /// Cumulative queueing (pre-service) delay over all completed jobs.
    pub fn wait_time(&self) -> Time {
        self.wait_time
    }

    /// Submits a job needing `service` time. If a server is free the job
    /// starts immediately and its [`JobStart`] is returned; otherwise the job
    /// queues and `None` is returned (its start will be reported by a later
    /// [`ServerPool::complete`]).
    pub fn submit(&mut self, now: Time, service: Time, token: u64) -> Option<JobStart> {
        if self.busy < self.servers {
            self.busy += 1;
            self.busy_time += service;
            Some(JobStart {
                token,
                finish_at: now + service,
            })
        } else {
            self.queue.push_back(Queued {
                token,
                service,
                arrived: now,
            });
            None
        }
    }

    /// Reports that a job in service finished at `now`, freeing its server.
    /// If a queued job exists, it enters service and its [`JobStart`] is
    /// returned.
    ///
    /// # Panics
    ///
    /// Panics if no job was in service.
    pub fn complete(&mut self, now: Time) -> Option<JobStart> {
        assert!(self.busy > 0, "{}: complete() with no busy server", self.name);
        self.jobs_done += 1;
        match self.queue.pop_front() {
            Some(q) => {
                self.wait_time += now - q.arrived;
                self.busy_time += q.service;
                Some(JobStart {
                    token: q.token,
                    finish_at: now + q.service,
                })
            }
            None => {
                self.busy -= 1;
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jobs_queue_in_fifo_order() {
        let mut p = ServerPool::new("p", 1);
        let s1 = p.submit(Time::ZERO, Time::from_ns(10.0), 1).unwrap();
        assert!(p.submit(Time::ZERO, Time::from_ns(10.0), 2).is_none());
        assert!(p.submit(Time::ZERO, Time::from_ns(10.0), 3).is_none());
        assert_eq!(p.queued(), 2);
        let s2 = p.complete(s1.finish_at).unwrap();
        assert_eq!(s2.token, 2);
        let s3 = p.complete(s2.finish_at).unwrap();
        assert_eq!(s3.token, 3);
        assert_eq!(s3.finish_at, Time::from_ns(30.0));
        assert!(p.complete(s3.finish_at).is_none());
        assert_eq!(p.busy(), 0);
        assert_eq!(p.jobs_done(), 3);
    }

    #[test]
    fn parallel_servers_overlap() {
        let mut p = ServerPool::new("p", 4);
        for i in 0..4 {
            let s = p.submit(Time::ZERO, Time::from_us(1.0), i).unwrap();
            assert_eq!(s.finish_at, Time::from_us(1.0));
        }
        assert_eq!(p.busy(), 4);
        assert!(p.submit(Time::ZERO, Time::from_us(1.0), 9).is_none());
    }

    #[test]
    fn wait_time_accumulates() {
        let mut p = ServerPool::new("p", 1);
        let s1 = p.submit(Time::ZERO, Time::from_us(5.0), 1).unwrap();
        p.submit(Time::ZERO, Time::from_us(5.0), 2);
        p.complete(s1.finish_at);
        assert_eq!(p.wait_time(), Time::from_us(5.0));
        assert_eq!(p.busy_time(), Time::from_us(10.0));
    }

    #[test]
    #[should_panic(expected = "no busy server")]
    fn complete_on_idle_pool_panics() {
        let mut p = ServerPool::new("p", 1);
        p.complete(Time::ZERO);
    }
}
