//! Fluid-flow bandwidth resources with weighted max-min fair sharing.
//!
//! Links, PCIe lanes, memory systems and compression engines are all modelled
//! as a [`FluidResource`]: a capacity in bytes/second shared by the flows
//! currently crossing it. Whenever the flow set changes, rates are
//! recomputed with **weighted max-min fairness** (water-filling): each flow
//! receives `weight × fair-share`, clamped to its optional rate cap, and
//! capacity freed by capped flows is redistributed to the rest. Between
//! changes, rates are constant, so every flow's completion instant is exact —
//! this is the classic piecewise-constant fluid approximation used by flow
//! simulators, and it is what lets a laptop reproduce bandwidth phenomena
//! measured on 100 GbE hardware.
//!
//! A flow may be *persistent* (infinite bytes) to model background pressure —
//! e.g. the Intel MLC memory-load injector from the paper's Section 3 — and
//! every flow carries a `class` tag so callers can account bytes per
//! direction (memory read vs write, PCIe H2D vs D2H).
//!
//! # Driving protocol
//!
//! The resource is passive. After *any* batch of calls at one instant, the
//! driver must:
//!
//! 1. drain [`FluidResource::take_completed`], and
//! 2. re-arm a wakeup at [`FluidResource::next_wake`] carrying
//!    [`FluidResource::epoch`]; stale epochs are ignored on delivery.
//!
//! # Performance
//!
//! Every operation is amortized **O(active flows)**, independent of how
//! many retired slots the flow table has accumulated:
//!
//! - `live_idx` keeps the live slots in ascending slot order, so
//!   [`FluidResource::sync`], [`FluidResource::next_wake`] and
//!   [`FluidResource::allocated_rate`] never visit dead slots. Ascending
//!   order also pins the floating-point accumulation order to what a full
//!   table scan would produce, so results are bit-identical to the naive
//!   implementation (kept as a differential oracle in the tests).
//! - `order` caches the water-filling order — live slots sorted by
//!   `(rate_cap / weight, slot)` — and is maintained by binary-searched
//!   insert/remove as flows come and go. `recompute` therefore never
//!   sorts; a full re-sort happens only when a rate-cap change invalidated
//!   the cached order. While no live flow is capped the order degenerates
//!   to ascending slots, so `order` is dropped entirely and `recompute`
//!   water-fills straight over `live_idx` (the fast path).
//! - `next_wake` is memoized; the cache is cleared whenever time advances
//!   or rates change, so repeated queries between events are O(1).
//!
//! # Examples
//!
//! ```
//! use simkit::{FlowSpec, FluidResource, Time};
//!
//! // A 100 Gbps link (12.5 GB/s).
//! let mut link = FluidResource::new("nic0", 12.5e9);
//! link.start_flow(Time::ZERO, 12.5e9, FlowSpec::new(), 1);
//! link.start_flow(Time::ZERO, 12.5e9, FlowSpec::new(), 2);
//! // Two equal flows share the link: each runs at 6.25 GB/s and both
//! // 12.5 GB transfers finish at t = 2 s (+1 ps rounding guard).
//! let wake = link.next_wake().unwrap();
//! assert_eq!(wake, Time::from_secs(2.0) + Time::from_ps(1));
//! link.sync(wake);
//! let done = link.take_completed();
//! assert_eq!(done.len(), 2);
//! ```

use crate::time::Time;
// simlint: allow(shared-mutable, reason = "single-owner memo cache: Cell lets &self next_wake() memoize; a FluidResource never leaves its owning shard")
use std::cell::Cell;

/// Residual byte count below which a flow is considered complete.
const EPS_BYTES: f64 = 0.5;

/// Completion instant of `remaining` bytes at `rate` from `base`: ceil to
/// the next picosecond, + 1 ps so the wake lands strictly after the
/// completion instant even when the division is exactly representable.
/// Pure per-flow arithmetic — used by both the fused wake-min updates and
/// the fallback [`FluidResource::next_wake`] scan, which therefore agree
/// bit-for-bit.
#[inline]
fn wake_at(base: Time, remaining: f64, rate: f64) -> Time {
    let secs = remaining / rate;
    base.saturating_add(Time::from_secs_ceil(secs))
        .saturating_add(Time::from_ps(1))
}

/// Identifier for a flow within one [`FluidResource`].
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct FlowId(u32);

/// Parameters of a new flow.
#[derive(Copy, Clone, Debug)]
pub struct FlowSpec {
    /// Relative share weight (default 1.0). Must be positive and finite.
    pub weight: f64,
    /// Upper bound on this flow's rate in bytes/sec (default unbounded).
    /// Used when the flow's source or sink is slower than this resource.
    pub rate_cap: f64,
    /// Accounting class (e.g. 0 = read, 1 = write). Purely for metering.
    /// Must be below 8, the size of the per-class byte table; the
    /// [`FlowSpec::class`] builder enforces the bound.
    pub class: u8,
}

impl FlowSpec {
    /// A weight-1, uncapped, class-0 flow.
    pub fn new() -> Self {
        FlowSpec {
            weight: 1.0,
            rate_cap: f64::INFINITY,
            class: 0,
        }
    }

    /// Sets the fair-share weight.
    pub fn weight(mut self, w: f64) -> Self {
        assert!(w > 0.0 && w.is_finite(), "weight must be positive: {w}");
        self.weight = w;
        self
    }

    /// Sets a rate cap in bytes/sec.
    pub fn rate_cap(mut self, cap: f64) -> Self {
        assert!(cap >= 0.0, "rate cap must be non-negative: {cap}");
        self.rate_cap = cap;
        self
    }

    /// Sets the accounting class.
    ///
    /// # Panics
    ///
    /// Panics if `class` is 8 or above: classes index an 8-entry byte
    /// table, and an out-of-range class would silently alias another
    /// class's accounting.
    pub fn class(mut self, class: u8) -> Self {
        assert!(class < 8, "accounting class out of range: {class}");
        self.class = class;
        self
    }
}

impl Default for FlowSpec {
    fn default() -> Self {
        Self::new()
    }
}

/// A finished flow, reported by [`FluidResource::take_completed`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct FlowEnd {
    /// The caller-supplied token identifying what this flow was.
    pub token: u64,
}

/// A shared-bandwidth resource with weighted max-min fair allocation.
///
/// See the module-level documentation for the driving protocol and the
/// performance model. The flow table is stored struct-of-arrays: the
/// hot passes ([`FluidResource::sync`], `recompute`) each touch only
/// the one or two columns they need, so a pass over the live set reads
/// a handful of dense cache lines instead of one scattered 64-byte
/// record per flow.
#[derive(Debug)]
pub struct FluidResource {
    name: &'static str,
    capacity: f64,
    /// Design capacity; `capacity` may be scaled below this by fault
    /// injection and restored via [`FluidResource::set_capacity_frac`].
    nominal: f64,
    /// Per-slot flow columns (struct-of-arrays, all the same length).
    /// A slot's entries are meaningful only while `live[slot]`.
    rate: Vec<f64>,
    remaining: Vec<f64>,
    weight: Vec<f64>,
    cap: Vec<f64>,
    class: Vec<u8>,
    token: Vec<u64>,
    live: Vec<bool>,
    free: Vec<u32>,
    active: usize,
    last_sync: Time,
    epoch: u64,
    completed: Vec<FlowEnd>,
    /// Cumulative bytes moved, per accounting class.
    class_bytes: [f64; 8],
    /// Live slot indices in ascending slot order: the dense iteration
    /// index that keeps the hot paths off dead slots.
    live_idx: Vec<u32>,
    /// Live slot indices sorted by `(rate_cap / weight, slot)` — the
    /// cached water-filling order. Valid only while `order_valid`;
    /// dropped while no live flow is capped (the order then equals
    /// `live_idx`).
    order: Vec<u32>,
    /// Whether `order` currently mirrors the live set.
    order_valid: bool,
    /// Number of live flows with a finite rate cap.
    capped_live: usize,
    /// Incrementally maintained sum of live-flow weights. Trusted by
    /// `recompute` only while `weights_exact` holds.
    weight_sum: f64,
    /// True while every weight ever admitted was an exact multiple of
    /// 1/16 small enough that `weight_sum` stays bit-identical to a
    /// fresh summing pass (f64 sums of such values below 2^40 are exact
    /// in any order). Sticky-false once an inexact weight shows up.
    weights_exact: bool,
    /// Memoized [`FluidResource::next_wake`]; `None` means "recompute".
    // simlint: allow(shared-mutable, reason = "single-owner memo cache; never crosses a shard boundary")
    wake_cache: Cell<Option<Option<Time>>>,
}

impl FluidResource {
    /// Creates a resource with `capacity` bytes/sec.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is negative or NaN.
    pub fn new(name: &'static str, capacity: f64) -> Self {
        assert!(
            capacity >= 0.0 && !capacity.is_nan(),
            "capacity must be non-negative: {capacity}"
        );
        FluidResource {
            name,
            capacity,
            nominal: capacity,
            rate: Vec::new(),
            remaining: Vec::new(),
            weight: Vec::new(),
            cap: Vec::new(),
            class: Vec::new(),
            token: Vec::new(),
            live: Vec::new(),
            free: Vec::new(),
            active: 0,
            last_sync: Time::ZERO,
            epoch: 0,
            completed: Vec::new(),
            class_bytes: [0.0; 8],
            live_idx: Vec::new(),
            order: Vec::new(),
            order_valid: false,
            capped_live: 0,
            weight_sum: 0.0,
            weights_exact: true,
            // simlint: allow(shared-mutable, reason = "single-owner memo cache; never crosses a shard boundary")
            wake_cache: Cell::new(None),
        }
    }

    /// The resource's display name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Current capacity in bytes/sec (nominal unless degraded).
    pub fn capacity(&self) -> f64 {
        self.capacity
    }

    /// The design capacity the resource was created with, unaffected by
    /// degradation.
    pub fn nominal_capacity(&self) -> f64 {
        self.nominal
    }

    /// Scales capacity to `frac` of nominal (fault injection: `0.0` is a
    /// hard link-down, `1.0` restores full bandwidth). Bytes already
    /// moved are settled at the old rates first, then all live flows are
    /// re-water-filled under the new capacity and the epoch bumps, so stale
    /// wakeups are discarded by the driving protocol as usual. At zero
    /// capacity every flow stalls ([`FluidResource::next_wake`] returns
    /// `None`) until capacity returns.
    ///
    /// # Panics
    ///
    /// Panics if `frac` is negative or NaN.
    pub fn set_capacity_frac(&mut self, now: Time, frac: f64) {
        assert!(
            frac >= 0.0 && !frac.is_nan(),
            "{}: invalid capacity fraction {frac}",
            self.name
        );
        self.sync(now);
        self.capacity = self.nominal * frac;
        self.recompute();
    }

    /// Number of currently active flows.
    pub fn active_flows(&self) -> usize {
        self.active
    }

    /// Monotonic epoch, bumped whenever rates change. Wakeups scheduled under
    /// an older epoch must be discarded.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Cumulative bytes transferred for an accounting class.
    ///
    /// # Panics
    ///
    /// Panics if `class` is 8 or above (see [`FlowSpec::class`]).
    pub fn bytes_for_class(&self, class: u8) -> f64 {
        assert!(class < 8, "accounting class out of range: {class}");
        self.class_bytes[class as usize]
    }

    /// Cumulative bytes transferred across all classes.
    pub fn total_bytes(&self) -> f64 {
        self.class_bytes.iter().sum()
    }

    /// Sum of current flow rates (bytes/sec); never exceeds capacity.
    pub fn allocated_rate(&self) -> f64 {
        self.live_idx
            .iter()
            .map(|&s| self.rate[s as usize])
            .sum()
    }

    /// Current rate of one flow in bytes/sec.
    ///
    /// # Panics
    ///
    /// Panics if the flow has already completed or been ended.
    pub fn flow_rate(&self, id: FlowId) -> f64 {
        assert!(
            self.live[id.0 as usize],
            "{}: flow {id:?} is not live",
            self.name
        );
        self.rate[id.0 as usize]
    }

    /// The water-filling sort key of a live slot. NaN-free: `start_flow`
    /// rejects non-positive weights and NaN caps.
    fn order_key(&self, slot: u32) -> f64 {
        self.cap[slot as usize] / self.weight[slot as usize]
    }

    /// Position of `slot` in `order` under the `(key, slot)` total order:
    /// its index if present, its insertion point if not.
    fn order_pos(&self, slot: u32) -> usize {
        let key = self.order_key(slot);
        self.order.partition_point(|&o| {
            let ko = self.order_key(o);
            ko < key || (ko == key && o < slot)
        })
    }

    /// Invalidates the cached water-filling order (used whenever it would
    /// degenerate to `live_idx` and maintaining it would be pure waste).
    fn drop_order(&mut self) {
        self.order_valid = false;
        self.order.clear();
    }

    /// Registers a newly live slot in the dense indices.
    fn index_insert(&mut self, slot: u32) {
        let pos = self.live_idx.partition_point(|&s| s < slot);
        self.live_idx.insert(pos, slot);
        let w = self.weight[slot as usize];
        self.weight_sum += w;
        if (w * 16.0).fract() != 0.0 || w > 1048576.0 || self.weight_sum > 1.1e12 {
            self.weights_exact = false;
        }
        self.capped_live += self.cap[slot as usize].is_finite() as usize;
        if self.capped_live == 0 {
            self.drop_order();
        } else if self.order_valid {
            let pos = self.order_pos(slot);
            self.order.insert(pos, slot);
        }
    }

    /// Removes a (still spec-intact) slot from the dense indices.
    fn index_remove(&mut self, slot: u32) {
        if self.order_valid {
            let pos = self.order_pos(slot);
            debug_assert_eq!(self.order.get(pos).copied(), Some(slot));
            self.order.remove(pos);
        }
        let pos = self.live_idx.partition_point(|&s| s < slot);
        debug_assert_eq!(self.live_idx.get(pos).copied(), Some(slot));
        self.live_idx.remove(pos);
        self.weight_sum -= self.weight[slot as usize];
        self.capped_live -= self.cap[slot as usize].is_finite() as usize;
        if self.capped_live == 0 {
            self.drop_order();
        }
    }

    /// Advances fluid state to `now`, moving bytes and retiring finished
    /// flows into the completed buffer.
    ///
    /// # Panics
    ///
    /// Panics if `now` is before the previous sync point.
    pub fn sync(&mut self, now: Time) {
        assert!(
            now >= self.last_sync,
            "{}: sync moving backwards: {now:?} < {:?}",
            self.name,
            self.last_sync
        );
        let dt = (now - self.last_sync).as_secs();
        self.last_sync = now;
        if dt == 0.0 || self.active == 0 {
            return;
        }
        let mut retired = false;
        for k in 0..self.live_idx.len() {
            let i = self.live_idx[k] as usize;
            let rate = self.rate[i];
            if rate == 0.0 {
                continue;
            }
            let rem = self.remaining[i];
            let moved = (rate * dt).min(rem);
            self.class_bytes[self.class[i] as usize] += moved;
            if rem.is_finite() {
                let rem = rem - moved;
                self.remaining[i] = rem;
                if rem <= EPS_BYTES {
                    self.live[i] = false;
                    retired = true;
                    self.active -= 1;
                    self.capped_live -= self.cap[i].is_finite() as usize;
                    self.weight_sum -= self.weight[i];
                    self.completed.push(FlowEnd { token: self.token[i] });
                    self.free.push(i as u32);
                }
            }
        }
        if retired {
            let live = &self.live;
            self.live_idx.retain(|&s| live[s as usize]);
            if self.order_valid {
                self.order.retain(|&s| live[s as usize]);
            }
            if self.capped_live == 0 {
                self.drop_order();
            }
            // `recompute` refreshes the wake cache from the new rates.
            self.recompute();
        } else {
            // Rates are unchanged but every remaining byte count moved:
            // completion instants shift by rounding, so the memo must be
            // recomputed on the next query.
            self.wake_cache.set(None);
        }
    }

    /// Starts a flow of `bytes` (may be `f64::INFINITY` for a persistent
    /// background flow). The caller must have synced to `now` beforehand or
    /// rely on this call doing it.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is negative or NaN, or if `spec` violates the
    /// documented field bounds (non-positive/non-finite weight, negative
    /// or NaN rate cap, class ≥ 8) — possible only by mutating the public
    /// fields directly past the builder's checks.
    pub fn start_flow(&mut self, now: Time, bytes: f64, spec: FlowSpec, token: u64) -> FlowId {
        assert!(bytes >= 0.0 && !bytes.is_nan(), "invalid flow size: {bytes}");
        assert!(
            spec.weight > 0.0 && spec.weight.is_finite(),
            "invalid flow weight: {}",
            spec.weight
        );
        assert!(
            spec.rate_cap >= 0.0 && !spec.rate_cap.is_nan(),
            "invalid rate cap: {}",
            spec.rate_cap
        );
        assert!(spec.class < 8, "accounting class out of range: {}", spec.class);
        self.sync(now);
        let id = match self.free.pop() {
            Some(slot) => {
                let i = slot as usize;
                self.rate[i] = 0.0;
                self.remaining[i] = bytes;
                self.weight[i] = spec.weight;
                self.cap[i] = spec.rate_cap;
                self.class[i] = spec.class;
                self.token[i] = token;
                self.live[i] = true;
                FlowId(slot)
            }
            None => {
                self.rate.push(0.0);
                self.remaining.push(bytes);
                self.weight.push(spec.weight);
                self.cap.push(spec.rate_cap);
                self.class.push(spec.class);
                self.token.push(token);
                self.live.push(true);
                FlowId((self.rate.len() - 1) as u32)
            }
        };
        // A zero-byte flow completes immediately without affecting rates.
        if bytes <= EPS_BYTES {
            self.live[id.0 as usize] = false;
            self.completed.push(FlowEnd { token });
            self.free.push(id.0);
            return id;
        }
        self.active += 1;
        self.index_insert(id.0);
        self.recompute();
        id
    }

    /// Ends a flow early (used for persistent background flows). Any
    /// remaining bytes are abandoned; no completion is reported.
    ///
    /// # Panics
    ///
    /// Panics if the flow is not live.
    pub fn end_flow(&mut self, now: Time, id: FlowId) {
        self.sync(now);
        let i = id.0 as usize;
        assert!(self.live[i], "{}: ending non-live flow {id:?}", self.name);
        self.live[i] = false;
        self.active -= 1;
        self.index_remove(id.0);
        self.free.push(id.0);
        self.recompute();
    }

    /// Changes a live flow's rate cap (e.g. the downstream stage sped up).
    ///
    /// # Panics
    ///
    /// Panics if the flow is not live, or if `cap` is negative or NaN.
    pub fn set_rate_cap(&mut self, now: Time, id: FlowId, cap: f64) {
        assert!(
            cap >= 0.0 && !cap.is_nan(),
            "{}: invalid rate cap {cap}",
            self.name
        );
        self.sync(now);
        let i = id.0 as usize;
        assert!(self.live[i], "{}: capping non-live flow {id:?}", self.name);
        // The sort key changes: pull the slot out under its old key and
        // re-insert it under the new one.
        let was_finite = self.cap[i].is_finite();
        if self.order_valid {
            let pos = self.order_pos(id.0);
            debug_assert_eq!(self.order.get(pos).copied(), Some(id.0));
            self.order.remove(pos);
        }
        self.cap[i] = cap;
        self.capped_live -= was_finite as usize;
        self.capped_live += cap.is_finite() as usize;
        if self.capped_live == 0 {
            self.drop_order();
        } else if self.order_valid {
            let pos = self.order_pos(id.0);
            self.order.insert(pos, id.0);
        }
        self.recompute();
    }

    /// Drains the buffer of flows that finished at or before the last sync.
    pub fn take_completed(&mut self) -> Vec<FlowEnd> {
        std::mem::take(&mut self.completed)
    }

    /// Appends the completed-flow buffer to `out` and clears it, keeping
    /// both allocations alive for reuse — the zero-allocation counterpart
    /// of [`FluidResource::take_completed`] for per-event drain loops.
    pub fn take_completed_into(&mut self, out: &mut Vec<FlowEnd>) {
        out.append(&mut self.completed);
    }

    /// The instant of the next flow completion under current rates, if any.
    ///
    /// Memoized: O(1) until the next sync or rate change.
    pub fn next_wake(&self) -> Option<Time> {
        if let Some(cached) = self.wake_cache.get() {
            return cached;
        }
        let mut best: Option<Time> = None;
        for &s in &self.live_idx {
            let i = s as usize;
            if self.rate[i] <= 0.0 || !self.remaining[i].is_finite() {
                continue;
            }
            let at = wake_at(self.last_sync, self.remaining[i], self.rate[i]);
            best = Some(match best {
                Some(b) => b.min(at),
                None => at,
            });
        }
        self.wake_cache.set(Some(best));
        best
    }

    /// Rebuilds the cached water-filling order from scratch. The total
    /// order `(key, slot)` reproduces exactly what a stable sort of the
    /// ascending live slots by key alone would yield.
    fn rebuild_order(&mut self) {
        let cap = &self.cap;
        let weight = &self.weight;
        let mut order = std::mem::take(&mut self.order);
        order.clear();
        order.extend_from_slice(&self.live_idx);
        order.sort_unstable_by(|&a, &b| {
            let ka = cap[a as usize] / weight[a as usize];
            let kb = cap[b as usize] / weight[b as usize];
            match ka.partial_cmp(&kb) {
                Some(std::cmp::Ordering::Equal) | None => a.cmp(&b),
                Some(o) => o,
            }
        });
        self.order = order;
        self.order_valid = true;
    }

    /// Weighted max-min fair (water-filling) rate allocation.
    ///
    /// Flows are visited in ascending `rate_cap / weight` order, so flows
    /// capped below the fair share are satisfied (and their leftover
    /// capacity released) in one pass. The order comes from the cached
    /// `order` index — or straight from `live_idx` when no live flow is
    /// capped (all keys +∞, so the sorted order *is* ascending slots) —
    /// and is never sorted here.
    fn recompute(&mut self) {
        self.epoch += 1;
        if self.active == 0 {
            self.wake_cache.set(Some(None));
            return;
        }
        let use_live = self.capped_live == 0;
        if !use_live && !self.order_valid {
            self.rebuild_order();
        }
        let order = if use_live {
            std::mem::take(&mut self.live_idx)
        } else {
            std::mem::take(&mut self.order)
        };
        // While every live weight is an exact dyadic (see `weight_exact`),
        // the incrementally maintained `weight_sum` equals the fresh pass
        // sum bit-for-bit (sums of multiples of 1/16 below 2^40 are exact
        // in f64 in any order), so the summing pass is skipped.
        let mut remaining_weight: f64 = if self.weights_exact {
            self.weight_sum
        } else {
            order.iter().map(|&i| self.weight[i as usize]).sum()
        };
        let mut remaining_cap = self.capacity;
        // The wake min is folded into the allocation pass, over *seconds*:
        // each flow's completion instant is `ceil(secs) + 1 ps` from the
        // same base, and `from_secs_ceil` is monotone, so converting the
        // f64 min once afterwards yields exactly the min of the converted
        // values a separate `next_wake` pass would take.
        let mut best_secs = f64::INFINITY;
        for &i in &order {
            let i = i as usize;
            let w = self.weight[i];
            let share = if remaining_weight > 0.0 {
                remaining_cap * w / remaining_weight
            } else {
                0.0
            };
            let rate = share.min(self.cap[i]);
            self.rate[i] = rate;
            remaining_cap = (remaining_cap - rate).max(0.0);
            remaining_weight -= w;
            let rem = self.remaining[i];
            if rate > 0.0 && rem.is_finite() {
                let secs = rem / rate;
                if secs < best_secs {
                    best_secs = secs;
                }
            }
        }
        if use_live {
            self.live_idx = order;
        } else {
            self.order = order;
        }
        let best = if best_secs.is_finite() {
            Some(
                self.last_sync
                    .saturating_add(Time::from_secs_ceil(best_secs))
                    .saturating_add(Time::from_ps(1)),
            )
        } else {
            None
        };
        self.wake_cache.set(Some(best));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::gbps;

    fn drain_tokens(r: &mut FluidResource) -> Vec<u64> {
        r.take_completed().into_iter().map(|e| e.token).collect()
    }

    #[test]
    fn single_flow_runs_at_capacity() {
        let mut r = FluidResource::new("link", 1e9);
        let id = r.start_flow(Time::ZERO, 1e9, FlowSpec::new(), 7);
        assert_eq!(r.flow_rate(id), 1e9);
        let wake = r.next_wake().unwrap();
        // 1 GB at 1 GB/s = 1 s (+1 ps rounding guard).
        assert!(wake >= Time::from_secs(1.0));
        assert!(wake <= Time::from_secs(1.0) + Time::from_ps(2));
        r.sync(wake);
        assert_eq!(drain_tokens(&mut r), vec![7]);
        assert_eq!(r.active_flows(), 0);
    }

    #[test]
    fn equal_flows_split_equally() {
        let mut r = FluidResource::new("link", 2e9);
        let a = r.start_flow(Time::ZERO, 1e9, FlowSpec::new(), 1);
        let b = r.start_flow(Time::ZERO, 1e9, FlowSpec::new(), 2);
        assert_eq!(r.flow_rate(a), 1e9);
        assert_eq!(r.flow_rate(b), 1e9);
    }

    #[test]
    fn weights_bias_allocation() {
        let mut r = FluidResource::new("mem", 3e9);
        let a = r.start_flow(Time::ZERO, f64::INFINITY, FlowSpec::new().weight(2.0), 1);
        let b = r.start_flow(Time::ZERO, f64::INFINITY, FlowSpec::new().weight(1.0), 2);
        assert!((r.flow_rate(a) - 2e9).abs() < 1.0);
        assert!((r.flow_rate(b) - 1e9).abs() < 1.0);
    }

    #[test]
    fn rate_cap_releases_capacity_to_others() {
        let mut r = FluidResource::new("pcie", 10e9);
        let slow = r.start_flow(Time::ZERO, f64::INFINITY, FlowSpec::new().rate_cap(1e9), 1);
        let fast = r.start_flow(Time::ZERO, f64::INFINITY, FlowSpec::new(), 2);
        assert_eq!(r.flow_rate(slow), 1e9);
        // The uncapped flow gets everything the capped one cannot use.
        assert!((r.flow_rate(fast) - 9e9).abs() < 1.0);
    }

    #[test]
    fn completion_frees_bandwidth_for_remaining_flow() {
        let mut r = FluidResource::new("link", 2e9);
        r.start_flow(Time::ZERO, 1e9, FlowSpec::new(), 1); // done at 1 s
        let b = r.start_flow(Time::ZERO, 3e9, FlowSpec::new(), 2);
        let w1 = r.next_wake().unwrap();
        r.sync(w1);
        assert_eq!(drain_tokens(&mut r), vec![1]);
        // Flow b moved 1 GB in the first second, 2 GB left at full 2 GB/s.
        assert!((r.flow_rate(b) - 2e9).abs() < 1.0);
        let w2 = r.next_wake().unwrap();
        assert!(w2 >= Time::from_secs(2.0) && w2 <= Time::from_secs(2.0) + Time::from_ps(4));
        r.sync(w2);
        assert_eq!(drain_tokens(&mut r), vec![2]);
    }

    #[test]
    fn persistent_flow_never_completes_but_meters_bytes() {
        let mut r = FluidResource::new("mem", 1e9);
        r.start_flow(Time::ZERO, f64::INFINITY, FlowSpec::new().class(3), 1);
        assert_eq!(r.next_wake(), None);
        r.sync(Time::from_secs(2.0));
        assert!(drain_tokens(&mut r).is_empty());
        assert!((r.bytes_for_class(3) - 2e9).abs() < 1.0);
    }

    #[test]
    fn end_flow_redistributes() {
        let mut r = FluidResource::new("link", 2e9);
        let bg = r.start_flow(Time::ZERO, f64::INFINITY, FlowSpec::new(), 1);
        let fg = r.start_flow(Time::ZERO, 4e9, FlowSpec::new(), 2);
        assert_eq!(r.flow_rate(fg), 1e9);
        r.end_flow(Time::from_secs(1.0), bg);
        assert_eq!(r.flow_rate(fg), 2e9);
        // fg moved 1 GB already; 3 GB at 2 GB/s → finishes at 2.5 s.
        let w = r.next_wake().unwrap();
        assert!(w >= Time::from_secs(2.5) && w <= Time::from_secs(2.5) + Time::from_ps(4));
    }

    #[test]
    fn zero_byte_flow_completes_immediately() {
        let mut r = FluidResource::new("link", 1e9);
        r.start_flow(Time::ZERO, 0.0, FlowSpec::new(), 9);
        assert_eq!(drain_tokens(&mut r), vec![9]);
        assert_eq!(r.active_flows(), 0);
    }

    #[test]
    fn zero_capacity_stalls() {
        let mut r = FluidResource::new("dead", 0.0);
        let id = r.start_flow(Time::ZERO, 100.0, FlowSpec::new(), 1);
        assert_eq!(r.flow_rate(id), 0.0);
        assert_eq!(r.next_wake(), None);
    }

    #[test]
    fn conservation_under_many_flows() {
        let mut r = FluidResource::new("mem", gbps(960.0));
        for i in 0..17 {
            let spec = FlowSpec::new()
                .weight(1.0 + (i % 3) as f64)
                .rate_cap(if i % 4 == 0 { gbps(10.0) } else { f64::INFINITY });
            r.start_flow(Time::ZERO, f64::INFINITY, spec, i);
        }
        let total = r.allocated_rate();
        assert!(total <= r.capacity() * (1.0 + 1e-9), "over-allocated: {total}");
        // Work conservation: with at least one uncapped flow, everything is used.
        assert!(total >= r.capacity() * (1.0 - 1e-9), "under-allocated: {total}");
    }

    #[test]
    fn set_rate_cap_changes_rate() {
        let mut r = FluidResource::new("link", 10e9);
        let id = r.start_flow(Time::ZERO, f64::INFINITY, FlowSpec::new(), 1);
        assert_eq!(r.flow_rate(id), 10e9);
        r.set_rate_cap(Time::from_secs(1.0), id, 1e9);
        assert_eq!(r.flow_rate(id), 1e9);
        assert!((r.total_bytes() - 10e9).abs() < 1.0);
    }

    #[test]
    fn epoch_bumps_on_rate_changes() {
        let mut r = FluidResource::new("link", 1e9);
        let e0 = r.epoch();
        let id = r.start_flow(Time::ZERO, f64::INFINITY, FlowSpec::new(), 1);
        assert!(r.epoch() > e0);
        let e1 = r.epoch();
        r.end_flow(Time::from_ps(10), id);
        assert!(r.epoch() > e1);
    }

    #[test]
    fn capacity_degradation_stalls_and_restores() {
        let mut r = FluidResource::new("link", 1e9);
        let id = r.start_flow(Time::ZERO, 2e9, FlowSpec::new(), 1);
        assert_eq!(r.flow_rate(id), 1e9);
        // Half capacity from t = 1 s: 1 GB moved, 1 GB left at 0.5 GB/s.
        r.set_capacity_frac(Time::from_secs(1.0), 0.5);
        assert_eq!(r.capacity(), 0.5e9);
        assert_eq!(r.nominal_capacity(), 1e9);
        assert_eq!(r.flow_rate(id), 0.5e9);
        // Hard down from t = 1.5 s: the flow stalls, no wake is armed.
        r.set_capacity_frac(Time::from_secs(1.5), 0.0);
        assert_eq!(r.flow_rate(id), 0.0);
        assert_eq!(r.next_wake(), None);
        // No bytes move while down.
        r.sync(Time::from_secs(5.0));
        assert!((r.total_bytes() - 1.25e9).abs() < 1.0);
        // Link restored: 0.75 GB left at full rate → done at 5.75 s.
        r.set_capacity_frac(Time::from_secs(5.0), 1.0);
        assert_eq!(r.capacity(), 1e9);
        let w = r.next_wake().unwrap();
        assert!(w >= Time::from_secs(5.75) && w <= Time::from_secs(5.75) + Time::from_ps(4));
        r.sync(w);
        assert_eq!(drain_tokens(&mut r), vec![1]);
    }

    #[test]
    fn degradation_bumps_epoch() {
        let mut r = FluidResource::new("link", 1e9);
        r.start_flow(Time::ZERO, f64::INFINITY, FlowSpec::new(), 1);
        let e = r.epoch();
        r.set_capacity_frac(Time::from_ps(10), 0.25);
        assert!(r.epoch() > e, "stale wakeups must be invalidated");
    }

    #[test]
    #[should_panic(expected = "invalid capacity fraction")]
    fn negative_capacity_fraction_panics() {
        let mut r = FluidResource::new("link", 1e9);
        r.set_capacity_frac(Time::ZERO, -0.5);
    }

    #[test]
    #[should_panic(expected = "sync moving backwards")]
    fn sync_backwards_panics() {
        let mut r = FluidResource::new("link", 1e9);
        r.sync(Time::from_secs(1.0));
        r.sync(Time::from_ms(1.0));
    }

    #[test]
    #[should_panic(expected = "accounting class out of range")]
    fn class_out_of_range_panics() {
        let _ = FlowSpec::new().class(8);
    }

    #[test]
    fn wake_cache_survives_queries_and_clears_on_change() {
        let mut r = FluidResource::new("link", 1e9);
        r.start_flow(Time::ZERO, 1e9, FlowSpec::new(), 1);
        let w = r.next_wake();
        assert_eq!(r.next_wake(), w, "repeated queries hit the cache");
        // A rate change must not serve the stale instant.
        r.start_flow(Time::ZERO, 1e9, FlowSpec::new(), 2);
        let w2 = r.next_wake().unwrap();
        assert!(w2 > w.unwrap(), "halved rate doubles the completion time");
        // Advancing time shifts the base instant even without rate changes.
        let mut p = FluidResource::new("p", 1e9);
        p.start_flow(Time::ZERO, 2e9, FlowSpec::new(), 3);
        let before = p.next_wake().unwrap();
        p.sync(Time::from_ms(500.0));
        assert!(p.take_completed().is_empty());
        let after = p.next_wake().unwrap();
        assert!((after >= before - Time::from_ps(2)) && (after <= before + Time::from_ps(2)));
    }

    #[test]
    fn slot_reuse_keeps_indices_dense() {
        let mut r = FluidResource::new("link", 8e9);
        let ids: Vec<FlowId> = (0..8)
            .map(|i| r.start_flow(Time::ZERO, f64::INFINITY, FlowSpec::new(), i))
            .collect();
        for id in ids.iter().take(6) {
            r.end_flow(Time::from_ps(5), *id);
        }
        assert_eq!(r.active_flows(), 2);
        // The freed slots are reused (LIFO) and the survivors share fairly.
        let n1 = r.start_flow(Time::from_ps(10), f64::INFINITY, FlowSpec::new(), 100);
        let n2 = r.start_flow(Time::from_ps(10), f64::INFINITY, FlowSpec::new(), 101);
        assert!((r.flow_rate(n1) - 2e9).abs() < 1.0);
        assert!((r.flow_rate(n2) - 2e9).abs() < 1.0);
        assert!((r.allocated_rate() - 8e9).abs() < 1.0);
        assert_eq!(r.flow_rate(ids[7]), r.flow_rate(n1));
    }

    /// The pre-optimization solver, kept verbatim as a differential
    /// oracle: full-table scans everywhere and a fresh collect + stable
    /// sort on every recompute. The optimized implementation must agree
    /// with it on rates (≤ 1e-9 relative), and *exactly* on completion
    /// order and wake instants.
    mod naive {
        use super::super::{FlowEnd, FlowSpec, EPS_BYTES};
        use crate::time::Time;

        #[derive(Debug, Clone)]
        struct Flow {
            remaining: f64,
            spec: FlowSpec,
            rate: f64,
            token: u64,
            live: bool,
        }

        #[derive(Debug)]
        pub struct NaiveResource {
            capacity: f64,
            nominal: f64,
            flows: Vec<Flow>,
            free: Vec<u32>,
            active: usize,
            last_sync: Time,
            epoch: u64,
            completed: Vec<FlowEnd>,
            class_bytes: [f64; 8],
        }

        impl NaiveResource {
            pub fn new(capacity: f64) -> Self {
                NaiveResource {
                    capacity,
                    nominal: capacity,
                    flows: Vec::new(),
                    free: Vec::new(),
                    active: 0,
                    last_sync: Time::ZERO,
                    epoch: 0,
                    completed: Vec::new(),
                    class_bytes: [0.0; 8],
                }
            }

            pub fn epoch(&self) -> u64 {
                self.epoch
            }

            pub fn bytes_for_class(&self, class: u8) -> f64 {
                self.class_bytes[class as usize & 7]
            }

            pub fn active_flows(&self) -> usize {
                self.active
            }

            pub fn allocated_rate(&self) -> f64 {
                self.flows.iter().filter(|f| f.live).map(|f| f.rate).sum()
            }

            pub fn flow_rate(&self, slot: u32) -> f64 {
                let f = &self.flows[slot as usize];
                assert!(f.live);
                f.rate
            }

            pub fn is_live(&self, slot: u32) -> bool {
                self.flows.get(slot as usize).is_some_and(|f| f.live)
            }

            pub fn sync(&mut self, now: Time) {
                assert!(now >= self.last_sync);
                let dt = (now - self.last_sync).as_secs();
                self.last_sync = now;
                if dt == 0.0 || self.active == 0 {
                    return;
                }
                let mut retired = false;
                for (i, f) in self.flows.iter_mut().enumerate() {
                    if !f.live || f.rate == 0.0 {
                        continue;
                    }
                    let moved = (f.rate * dt).min(f.remaining);
                    self.class_bytes[f.spec.class as usize & 7] += moved;
                    if f.remaining.is_finite() {
                        f.remaining -= moved;
                        if f.remaining <= EPS_BYTES {
                            f.live = false;
                            retired = true;
                            self.completed.push(FlowEnd { token: f.token });
                            self.free.push(i as u32);
                        }
                    }
                }
                if retired {
                    self.active = self.flows.iter().filter(|f| f.live).count();
                    self.recompute();
                }
            }

            pub fn start_flow(&mut self, now: Time, bytes: f64, spec: FlowSpec, token: u64) -> u32 {
                self.sync(now);
                let flow = Flow {
                    remaining: bytes,
                    spec,
                    rate: 0.0,
                    token,
                    live: true,
                };
                let slot = match self.free.pop() {
                    Some(slot) => {
                        self.flows[slot as usize] = flow;
                        slot
                    }
                    None => {
                        self.flows.push(flow);
                        (self.flows.len() - 1) as u32
                    }
                };
                if bytes <= EPS_BYTES {
                    let f = &mut self.flows[slot as usize];
                    f.live = false;
                    self.completed.push(FlowEnd { token });
                    self.free.push(slot);
                    return slot;
                }
                self.active += 1;
                self.recompute();
                slot
            }

            pub fn end_flow(&mut self, now: Time, slot: u32) {
                self.sync(now);
                let f = &mut self.flows[slot as usize];
                assert!(f.live);
                f.live = false;
                self.active -= 1;
                self.free.push(slot);
                self.recompute();
            }

            pub fn set_rate_cap(&mut self, now: Time, slot: u32, cap: f64) {
                self.sync(now);
                let f = &mut self.flows[slot as usize];
                assert!(f.live);
                f.spec.rate_cap = cap;
                self.recompute();
            }

            pub fn set_capacity_frac(&mut self, now: Time, frac: f64) {
                self.sync(now);
                self.capacity = self.nominal * frac;
                self.recompute();
            }

            pub fn take_completed(&mut self) -> Vec<FlowEnd> {
                std::mem::take(&mut self.completed)
            }

            pub fn next_wake(&self) -> Option<Time> {
                let mut best: Option<Time> = None;
                for f in &self.flows {
                    if !f.live || f.rate <= 0.0 || !f.remaining.is_finite() {
                        continue;
                    }
                    let secs = f.remaining / f.rate;
                    let at = self
                        .last_sync
                        .saturating_add(Time::from_secs_ceil(secs))
                        .saturating_add(Time::from_ps(1));
                    best = Some(match best {
                        Some(b) => b.min(at),
                        None => at,
                    });
                }
                best
            }

            fn recompute(&mut self) {
                self.epoch += 1;
                if self.active == 0 {
                    return;
                }
                let mut order: Vec<u32> = (0..self.flows.len() as u32)
                    .filter(|&i| self.flows[i as usize].live)
                    .collect();
                order.sort_by(|&a, &b| {
                    let fa = &self.flows[a as usize];
                    let fb = &self.flows[b as usize];
                    let ka = fa.spec.rate_cap / fa.spec.weight;
                    let kb = fb.spec.rate_cap / fb.spec.weight;
                    ka.partial_cmp(&kb).unwrap_or(std::cmp::Ordering::Equal)
                });
                let mut remaining_cap = self.capacity;
                let mut remaining_weight: f64 = order
                    .iter()
                    .map(|&i| self.flows[i as usize].spec.weight)
                    .sum();
                for &i in &order {
                    let f = &mut self.flows[i as usize];
                    let share = if remaining_weight > 0.0 {
                        remaining_cap * f.spec.weight / remaining_weight
                    } else {
                        0.0
                    };
                    let rate = share.min(f.spec.rate_cap);
                    f.rate = rate;
                    remaining_cap = (remaining_cap - rate).max(0.0);
                    remaining_weight -= f.spec.weight;
                }
            }
        }
    }

    mod differential {
        use super::naive::NaiveResource;
        use super::*;
        use testkit::gen::{self, Gen};
        use testkit::one_of;

        /// One step of a random flow script. Flow references are indices
        /// into the list of tokens started so far, reduced mod its length
        /// at interpretation time so every case is valid.
        #[derive(Clone, Debug)]
        enum Op {
            Start { bytes: u32, weight: u8, cap: u8, persistent: bool },
            End { which: u8 },
            SetCap { which: u8, cap: u8 },
            SetCapacity { pct: u8 },
            Advance { ps: u32 },
            AdvanceToWake,
        }

        fn op_gen() -> impl Gen<Value = Op> {
            one_of![
                (
                    gen::u32s(1..200_000_000),
                    gen::u8s(1..5),
                    gen::u8s(0..5),
                    gen::bools()
                )
                    .map(|(bytes, weight, cap, persistent)| Op::Start {
                        bytes,
                        weight,
                        cap,
                        persistent
                    }),
                gen::u8s(..).map(|which| Op::End { which }),
                (gen::u8s(..), gen::u8s(0..5)).map(|(which, cap)| Op::SetCap { which, cap }),
                gen::u8s(0..101).map(|pct| Op::SetCapacity { pct }),
                gen::u32s(1..100_000_000).map(|ps| Op::Advance { ps }),
                gen::just(Op::AdvanceToWake),
            ]
        }

        fn close(a: f64, b: f64) -> bool {
            (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0)
        }

        /// Runs one script against both solvers, comparing rates,
        /// completions, wake instants, epochs and per-class byte meters
        /// after every step. Slot allocation is identical on both sides
        /// (same free-list discipline), so slots compare directly.
        fn run_script(ops: &[Op]) {
            let capacity = 10e9;
            let mut fast = FluidResource::new("diff", capacity);
            let mut slow = NaiveResource::new(capacity);
            let mut now = Time::ZERO;
            let mut token = 0u64;
            // Slots ever started, for End/SetCap to pick targets from.
            // Both solvers use the same free-list discipline, so a naive
            // slot is also the fast solver's `FlowId`.
            let mut slots: Vec<u32> = Vec::new();
            for op in ops {
                match *op {
                    Op::Start { bytes, weight, cap, persistent } => {
                        let mut spec = FlowSpec::new().weight(weight as f64);
                        if cap > 0 {
                            spec = spec.rate_cap(cap as f64 * 1.5e9);
                        }
                        let bytes = if persistent { f64::INFINITY } else { bytes as f64 };
                        let a = fast.start_flow(now, bytes, spec, token);
                        let b = slow.start_flow(now, bytes, spec, token);
                        assert_eq!(a.0, b, "slot allocation diverged");
                        slots.push(b);
                        token += 1;
                    }
                    Op::End { which } => {
                        if slots.is_empty() {
                            continue;
                        }
                        let slot = slots[which as usize % slots.len()];
                        if !slow.is_live(slot) {
                            continue;
                        }
                        fast.end_flow(now, FlowId(slot));
                        slow.end_flow(now, slot);
                    }
                    Op::SetCap { which, cap } => {
                        if slots.is_empty() {
                            continue;
                        }
                        let slot = slots[which as usize % slots.len()];
                        if !slow.is_live(slot) {
                            continue;
                        }
                        let cap = if cap == 0 { f64::INFINITY } else { cap as f64 * 1.5e9 };
                        fast.set_rate_cap(now, FlowId(slot), cap);
                        slow.set_rate_cap(now, slot, cap);
                    }
                    Op::SetCapacity { pct } => {
                        fast.set_capacity_frac(now, pct as f64 / 100.0);
                        slow.set_capacity_frac(now, pct as f64 / 100.0);
                    }
                    Op::Advance { ps } => {
                        now += Time::from_ps(ps as u64);
                        fast.sync(now);
                        slow.sync(now);
                    }
                    Op::AdvanceToWake => {
                        let w = fast.next_wake();
                        assert_eq!(w, slow.next_wake(), "wake instants diverged");
                        if let Some(at) = w {
                            now = at;
                            fast.sync(now);
                            slow.sync(now);
                        }
                    }
                }
                assert_eq!(fast.epoch(), slow.epoch(), "epoch counters diverged");
                assert_eq!(fast.active_flows(), slow.active_flows());
                assert_eq!(
                    fast.take_completed(),
                    slow.take_completed(),
                    "completion order diverged"
                );
                assert_eq!(fast.next_wake(), slow.next_wake(), "next_wake diverged");
                assert!(
                    close(fast.allocated_rate(), slow.allocated_rate()),
                    "allocated rate diverged: {} vs {}",
                    fast.allocated_rate(),
                    slow.allocated_rate()
                );
                for &slot in &slots {
                    if slow.is_live(slot) {
                        let a = fast.flow_rate(FlowId(slot));
                        let b = slow.flow_rate(slot);
                        assert!(close(a, b), "flow {slot} rate diverged: {a} vs {b}");
                    }
                }
                for class in 0..8 {
                    assert!(
                        close(fast.bytes_for_class(class), slow.bytes_for_class(class)),
                        "class {class} bytes diverged"
                    );
                }
            }
        }

        testkit::prop! {
            cases = 96;

            /// The incremental solver and the naive oracle agree on every
            /// observable for arbitrary flow scripts.
            fn incremental_solver_matches_naive_oracle(ops in gen::vecs(op_gen(), 1..80)) {
                run_script(&ops);
            }
        }

        #[test]
        fn capped_uncapped_transitions_match_oracle() {
            // A directed script that walks capped_live through
            // 0 → n → 0 → n while flows retire mid-stream, covering the
            // order-cache drop/rebuild edges the random scripts may miss.
            let ops = vec![
                Op::Start { bytes: 0, weight: 1, cap: 0, persistent: true },
                Op::Start { bytes: 50_000_000, weight: 2, cap: 0, persistent: false },
                Op::SetCap { which: 0, cap: 1 },
                Op::Start { bytes: 80_000_000, weight: 1, cap: 2, persistent: false },
                Op::AdvanceToWake,
                Op::SetCap { which: 0, cap: 0 },
                Op::Advance { ps: 5_000_000 },
                Op::SetCap { which: 2, cap: 0 },
                Op::AdvanceToWake,
                Op::SetCapacity { pct: 40 },
                Op::AdvanceToWake,
                Op::SetCapacity { pct: 100 },
                Op::End { which: 0 },
                Op::AdvanceToWake,
            ];
            run_script(&ops);
        }
    }
}
