//! Fluid-flow bandwidth resources with weighted max-min fair sharing.
//!
//! Links, PCIe lanes, memory systems and compression engines are all modelled
//! as a [`FluidResource`]: a capacity in bytes/second shared by the flows
//! currently crossing it. Whenever the flow set changes, rates are
//! recomputed with **weighted max-min fairness** (water-filling): each flow
//! receives `weight × fair-share`, clamped to its optional rate cap, and
//! capacity freed by capped flows is redistributed to the rest. Between
//! changes, rates are constant, so every flow's completion instant is exact —
//! this is the classic piecewise-constant fluid approximation used by flow
//! simulators, and it is what lets a laptop reproduce bandwidth phenomena
//! measured on 100 GbE hardware.
//!
//! A flow may be *persistent* (infinite bytes) to model background pressure —
//! e.g. the Intel MLC memory-load injector from the paper's Section 3 — and
//! every flow carries a `class` tag so callers can account bytes per
//! direction (memory read vs write, PCIe H2D vs D2H).
//!
//! # Driving protocol
//!
//! The resource is passive. After *any* batch of calls at one instant, the
//! driver must:
//!
//! 1. drain [`FluidResource::take_completed`], and
//! 2. re-arm a wakeup at [`FluidResource::next_wake`] carrying
//!    [`FluidResource::epoch`]; stale epochs are ignored on delivery.
//!
//! # Examples
//!
//! ```
//! use simkit::{FlowSpec, FluidResource, Time};
//!
//! // A 100 Gbps link (12.5 GB/s).
//! let mut link = FluidResource::new("nic0", 12.5e9);
//! link.start_flow(Time::ZERO, 12.5e9, FlowSpec::new(), 1);
//! link.start_flow(Time::ZERO, 12.5e9, FlowSpec::new(), 2);
//! // Two equal flows share the link: each runs at 6.25 GB/s and both
//! // 12.5 GB transfers finish at t = 2 s (+1 ps rounding guard).
//! let wake = link.next_wake().unwrap();
//! assert_eq!(wake, Time::from_secs(2.0) + Time::from_ps(1));
//! link.sync(wake);
//! let done = link.take_completed();
//! assert_eq!(done.len(), 2);
//! ```

use crate::time::Time;

/// Residual byte count below which a flow is considered complete.
const EPS_BYTES: f64 = 0.5;

/// Identifier for a flow within one [`FluidResource`].
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct FlowId(u32);

/// Parameters of a new flow.
#[derive(Copy, Clone, Debug)]
pub struct FlowSpec {
    /// Relative share weight (default 1.0).
    pub weight: f64,
    /// Upper bound on this flow's rate in bytes/sec (default unbounded).
    /// Used when the flow's source or sink is slower than this resource.
    pub rate_cap: f64,
    /// Accounting class (e.g. 0 = read, 1 = write). Purely for metering.
    pub class: u8,
}

impl FlowSpec {
    /// A weight-1, uncapped, class-0 flow.
    pub fn new() -> Self {
        FlowSpec {
            weight: 1.0,
            rate_cap: f64::INFINITY,
            class: 0,
        }
    }

    /// Sets the fair-share weight.
    pub fn weight(mut self, w: f64) -> Self {
        assert!(w > 0.0 && w.is_finite(), "weight must be positive: {w}");
        self.weight = w;
        self
    }

    /// Sets a rate cap in bytes/sec.
    pub fn rate_cap(mut self, cap: f64) -> Self {
        assert!(cap >= 0.0, "rate cap must be non-negative: {cap}");
        self.rate_cap = cap;
        self
    }

    /// Sets the accounting class.
    pub fn class(mut self, class: u8) -> Self {
        self.class = class;
        self
    }
}

impl Default for FlowSpec {
    fn default() -> Self {
        Self::new()
    }
}

/// A finished flow, reported by [`FluidResource::take_completed`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct FlowEnd {
    /// The caller-supplied token identifying what this flow was.
    pub token: u64,
}

#[derive(Debug, Clone)]
struct Flow {
    remaining: f64,
    spec: FlowSpec,
    rate: f64,
    token: u64,
    live: bool,
}

/// A shared-bandwidth resource with weighted max-min fair allocation.
///
/// See the module-level documentation for the driving protocol.
#[derive(Debug)]
pub struct FluidResource {
    name: &'static str,
    capacity: f64,
    /// Design capacity; `capacity` may be scaled below this by fault
    /// injection and restored via [`FluidResource::set_capacity_frac`].
    nominal: f64,
    flows: Vec<Flow>,
    free: Vec<u32>,
    active: usize,
    last_sync: Time,
    epoch: u64,
    completed: Vec<FlowEnd>,
    /// Cumulative bytes moved, per accounting class.
    class_bytes: [f64; 8],
}

impl FluidResource {
    /// Creates a resource with `capacity` bytes/sec.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is negative or NaN.
    pub fn new(name: &'static str, capacity: f64) -> Self {
        assert!(
            capacity >= 0.0 && !capacity.is_nan(),
            "capacity must be non-negative: {capacity}"
        );
        FluidResource {
            name,
            capacity,
            nominal: capacity,
            flows: Vec::new(),
            free: Vec::new(),
            active: 0,
            last_sync: Time::ZERO,
            epoch: 0,
            completed: Vec::new(),
            class_bytes: [0.0; 8],
        }
    }

    /// The resource's display name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Current capacity in bytes/sec (nominal unless degraded).
    pub fn capacity(&self) -> f64 {
        self.capacity
    }

    /// The design capacity the resource was created with, unaffected by
    /// degradation.
    pub fn nominal_capacity(&self) -> f64 {
        self.nominal
    }

    /// Scales capacity to `frac` of nominal (fault injection: `0.0` is a
    /// hard link-down, `1.0` restores full bandwidth). Bytes already
    /// moved are settled at the old rates first, then all live flows are
    /// re-water-filled under the new capacity and the epoch bumps, so stale
    /// wakeups are discarded by the driving protocol as usual. At zero
    /// capacity every flow stalls ([`FluidResource::next_wake`] returns
    /// `None`) until capacity returns.
    ///
    /// # Panics
    ///
    /// Panics if `frac` is negative or NaN.
    pub fn set_capacity_frac(&mut self, now: Time, frac: f64) {
        assert!(
            frac >= 0.0 && !frac.is_nan(),
            "{}: invalid capacity fraction {frac}",
            self.name
        );
        self.sync(now);
        self.capacity = self.nominal * frac;
        self.recompute();
    }

    /// Number of currently active flows.
    pub fn active_flows(&self) -> usize {
        self.active
    }

    /// Monotonic epoch, bumped whenever rates change. Wakeups scheduled under
    /// an older epoch must be discarded.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Cumulative bytes transferred for an accounting class.
    pub fn bytes_for_class(&self, class: u8) -> f64 {
        self.class_bytes[class as usize & 7]
    }

    /// Cumulative bytes transferred across all classes.
    pub fn total_bytes(&self) -> f64 {
        self.class_bytes.iter().sum()
    }

    /// Sum of current flow rates (bytes/sec); never exceeds capacity.
    pub fn allocated_rate(&self) -> f64 {
        self.flows
            .iter()
            .filter(|f| f.live)
            .map(|f| f.rate)
            .sum()
    }

    /// Current rate of one flow in bytes/sec.
    ///
    /// # Panics
    ///
    /// Panics if the flow has already completed or been ended.
    pub fn flow_rate(&self, id: FlowId) -> f64 {
        let f = &self.flows[id.0 as usize];
        assert!(f.live, "{}: flow {id:?} is not live", self.name);
        f.rate
    }

    /// Advances fluid state to `now`, moving bytes and retiring finished
    /// flows into the completed buffer.
    ///
    /// # Panics
    ///
    /// Panics if `now` is before the previous sync point.
    pub fn sync(&mut self, now: Time) {
        assert!(
            now >= self.last_sync,
            "{}: sync moving backwards: {now:?} < {:?}",
            self.name,
            self.last_sync
        );
        let dt = (now - self.last_sync).as_secs();
        self.last_sync = now;
        if dt == 0.0 || self.active == 0 {
            return;
        }
        let mut retired = false;
        for (i, f) in self.flows.iter_mut().enumerate() {
            if !f.live || f.rate == 0.0 {
                continue;
            }
            let moved = (f.rate * dt).min(f.remaining);
            self.class_bytes[f.spec.class as usize & 7] += moved;
            if f.remaining.is_finite() {
                f.remaining -= moved;
                if f.remaining <= EPS_BYTES {
                    f.live = false;
                    retired = true;
                    self.completed.push(FlowEnd { token: f.token });
                    self.free.push(i as u32);
                }
            }
        }
        if retired {
            self.active = self.flows.iter().filter(|f| f.live).count();
            self.recompute();
        }
    }

    /// Starts a flow of `bytes` (may be `f64::INFINITY` for a persistent
    /// background flow). The caller must have synced to `now` beforehand or
    /// rely on this call doing it.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is negative or NaN.
    pub fn start_flow(&mut self, now: Time, bytes: f64, spec: FlowSpec, token: u64) -> FlowId {
        assert!(bytes >= 0.0 && !bytes.is_nan(), "invalid flow size: {bytes}");
        self.sync(now);
        let flow = Flow {
            remaining: bytes,
            spec,
            rate: 0.0,
            token,
            live: true,
        };
        let id = match self.free.pop() {
            Some(slot) => {
                self.flows[slot as usize] = flow;
                FlowId(slot)
            }
            None => {
                self.flows.push(flow);
                FlowId((self.flows.len() - 1) as u32)
            }
        };
        // A zero-byte flow completes immediately without affecting rates.
        if bytes <= EPS_BYTES {
            let f = &mut self.flows[id.0 as usize];
            f.live = false;
            self.completed.push(FlowEnd { token });
            self.free.push(id.0);
            return id;
        }
        self.active += 1;
        self.recompute();
        id
    }

    /// Ends a flow early (used for persistent background flows). Any
    /// remaining bytes are abandoned; no completion is reported.
    ///
    /// # Panics
    ///
    /// Panics if the flow is not live.
    pub fn end_flow(&mut self, now: Time, id: FlowId) {
        self.sync(now);
        let f = &mut self.flows[id.0 as usize];
        assert!(f.live, "{}: ending non-live flow {id:?}", self.name);
        f.live = false;
        self.active -= 1;
        self.free.push(id.0);
        self.recompute();
    }

    /// Changes a live flow's rate cap (e.g. the downstream stage sped up).
    ///
    /// # Panics
    ///
    /// Panics if the flow is not live.
    pub fn set_rate_cap(&mut self, now: Time, id: FlowId, cap: f64) {
        self.sync(now);
        let f = &mut self.flows[id.0 as usize];
        assert!(f.live, "{}: capping non-live flow {id:?}", self.name);
        f.spec.rate_cap = cap;
        self.recompute();
    }

    /// Drains the buffer of flows that finished at or before the last sync.
    pub fn take_completed(&mut self) -> Vec<FlowEnd> {
        std::mem::take(&mut self.completed)
    }

    /// The instant of the next flow completion under current rates, if any.
    pub fn next_wake(&self) -> Option<Time> {
        let mut best: Option<Time> = None;
        for f in &self.flows {
            if !f.live || f.rate <= 0.0 || !f.remaining.is_finite() {
                continue;
            }
            let secs = f.remaining / f.rate;
            // Ceil + 1 ps so the wake lands strictly after the completion
            // instant even when `secs` is exactly representable.
            let at = self
                .last_sync
                .saturating_add(Time::from_secs_ceil(secs))
                .saturating_add(Time::from_ps(1));
            best = Some(match best {
                Some(b) => b.min(at),
                None => at,
            });
        }
        best
    }

    /// Weighted max-min fair (water-filling) rate allocation.
    fn recompute(&mut self) {
        self.epoch += 1;
        if self.active == 0 {
            return;
        }
        // Collect live flow indices sorted by cap/weight ascending, so that
        // flows capped below the fair share are satisfied (and their leftover
        // capacity released) in one pass.
        let mut order: Vec<u32> = (0..self.flows.len() as u32)
            .filter(|&i| self.flows[i as usize].live)
            .collect();
        order.sort_by(|&a, &b| {
            let fa = &self.flows[a as usize];
            let fb = &self.flows[b as usize];
            let ka = fa.spec.rate_cap / fa.spec.weight;
            let kb = fb.spec.rate_cap / fb.spec.weight;
            ka.partial_cmp(&kb).unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut remaining_cap = self.capacity;
        let mut remaining_weight: f64 = order
            .iter()
            .map(|&i| self.flows[i as usize].spec.weight)
            .sum();
        for &i in &order {
            let f = &mut self.flows[i as usize];
            let share = if remaining_weight > 0.0 {
                remaining_cap * f.spec.weight / remaining_weight
            } else {
                0.0
            };
            let rate = share.min(f.spec.rate_cap);
            f.rate = rate;
            remaining_cap = (remaining_cap - rate).max(0.0);
            remaining_weight -= f.spec.weight;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::gbps;

    fn drain_tokens(r: &mut FluidResource) -> Vec<u64> {
        r.take_completed().into_iter().map(|e| e.token).collect()
    }

    #[test]
    fn single_flow_runs_at_capacity() {
        let mut r = FluidResource::new("link", 1e9);
        let id = r.start_flow(Time::ZERO, 1e9, FlowSpec::new(), 7);
        assert_eq!(r.flow_rate(id), 1e9);
        let wake = r.next_wake().unwrap();
        // 1 GB at 1 GB/s = 1 s (+1 ps rounding guard).
        assert!(wake >= Time::from_secs(1.0));
        assert!(wake <= Time::from_secs(1.0) + Time::from_ps(2));
        r.sync(wake);
        assert_eq!(drain_tokens(&mut r), vec![7]);
        assert_eq!(r.active_flows(), 0);
    }

    #[test]
    fn equal_flows_split_equally() {
        let mut r = FluidResource::new("link", 2e9);
        let a = r.start_flow(Time::ZERO, 1e9, FlowSpec::new(), 1);
        let b = r.start_flow(Time::ZERO, 1e9, FlowSpec::new(), 2);
        assert_eq!(r.flow_rate(a), 1e9);
        assert_eq!(r.flow_rate(b), 1e9);
    }

    #[test]
    fn weights_bias_allocation() {
        let mut r = FluidResource::new("mem", 3e9);
        let a = r.start_flow(Time::ZERO, f64::INFINITY, FlowSpec::new().weight(2.0), 1);
        let b = r.start_flow(Time::ZERO, f64::INFINITY, FlowSpec::new().weight(1.0), 2);
        assert!((r.flow_rate(a) - 2e9).abs() < 1.0);
        assert!((r.flow_rate(b) - 1e9).abs() < 1.0);
    }

    #[test]
    fn rate_cap_releases_capacity_to_others() {
        let mut r = FluidResource::new("pcie", 10e9);
        let slow = r.start_flow(Time::ZERO, f64::INFINITY, FlowSpec::new().rate_cap(1e9), 1);
        let fast = r.start_flow(Time::ZERO, f64::INFINITY, FlowSpec::new(), 2);
        assert_eq!(r.flow_rate(slow), 1e9);
        // The uncapped flow gets everything the capped one cannot use.
        assert!((r.flow_rate(fast) - 9e9).abs() < 1.0);
    }

    #[test]
    fn completion_frees_bandwidth_for_remaining_flow() {
        let mut r = FluidResource::new("link", 2e9);
        r.start_flow(Time::ZERO, 1e9, FlowSpec::new(), 1); // done at 1 s
        let b = r.start_flow(Time::ZERO, 3e9, FlowSpec::new(), 2);
        let w1 = r.next_wake().unwrap();
        r.sync(w1);
        assert_eq!(drain_tokens(&mut r), vec![1]);
        // Flow b moved 1 GB in the first second, 2 GB left at full 2 GB/s.
        assert!((r.flow_rate(b) - 2e9).abs() < 1.0);
        let w2 = r.next_wake().unwrap();
        assert!(w2 >= Time::from_secs(2.0) && w2 <= Time::from_secs(2.0) + Time::from_ps(4));
        r.sync(w2);
        assert_eq!(drain_tokens(&mut r), vec![2]);
    }

    #[test]
    fn persistent_flow_never_completes_but_meters_bytes() {
        let mut r = FluidResource::new("mem", 1e9);
        r.start_flow(Time::ZERO, f64::INFINITY, FlowSpec::new().class(3), 1);
        assert_eq!(r.next_wake(), None);
        r.sync(Time::from_secs(2.0));
        assert!(drain_tokens(&mut r).is_empty());
        assert!((r.bytes_for_class(3) - 2e9).abs() < 1.0);
    }

    #[test]
    fn end_flow_redistributes() {
        let mut r = FluidResource::new("link", 2e9);
        let bg = r.start_flow(Time::ZERO, f64::INFINITY, FlowSpec::new(), 1);
        let fg = r.start_flow(Time::ZERO, 4e9, FlowSpec::new(), 2);
        assert_eq!(r.flow_rate(fg), 1e9);
        r.end_flow(Time::from_secs(1.0), bg);
        assert_eq!(r.flow_rate(fg), 2e9);
        // fg moved 1 GB already; 3 GB at 2 GB/s → finishes at 2.5 s.
        let w = r.next_wake().unwrap();
        assert!(w >= Time::from_secs(2.5) && w <= Time::from_secs(2.5) + Time::from_ps(4));
    }

    #[test]
    fn zero_byte_flow_completes_immediately() {
        let mut r = FluidResource::new("link", 1e9);
        r.start_flow(Time::ZERO, 0.0, FlowSpec::new(), 9);
        assert_eq!(drain_tokens(&mut r), vec![9]);
        assert_eq!(r.active_flows(), 0);
    }

    #[test]
    fn zero_capacity_stalls() {
        let mut r = FluidResource::new("dead", 0.0);
        let id = r.start_flow(Time::ZERO, 100.0, FlowSpec::new(), 1);
        assert_eq!(r.flow_rate(id), 0.0);
        assert_eq!(r.next_wake(), None);
    }

    #[test]
    fn conservation_under_many_flows() {
        let mut r = FluidResource::new("mem", gbps(960.0));
        for i in 0..17 {
            let spec = FlowSpec::new()
                .weight(1.0 + (i % 3) as f64)
                .rate_cap(if i % 4 == 0 { gbps(10.0) } else { f64::INFINITY });
            r.start_flow(Time::ZERO, f64::INFINITY, spec, i);
        }
        let total = r.allocated_rate();
        assert!(total <= r.capacity() * (1.0 + 1e-9), "over-allocated: {total}");
        // Work conservation: with at least one uncapped flow, everything is used.
        assert!(total >= r.capacity() * (1.0 - 1e-9), "under-allocated: {total}");
    }

    #[test]
    fn set_rate_cap_changes_rate() {
        let mut r = FluidResource::new("link", 10e9);
        let id = r.start_flow(Time::ZERO, f64::INFINITY, FlowSpec::new(), 1);
        assert_eq!(r.flow_rate(id), 10e9);
        r.set_rate_cap(Time::from_secs(1.0), id, 1e9);
        assert_eq!(r.flow_rate(id), 1e9);
        assert!((r.total_bytes() - 10e9).abs() < 1.0);
    }

    #[test]
    fn epoch_bumps_on_rate_changes() {
        let mut r = FluidResource::new("link", 1e9);
        let e0 = r.epoch();
        let id = r.start_flow(Time::ZERO, f64::INFINITY, FlowSpec::new(), 1);
        assert!(r.epoch() > e0);
        let e1 = r.epoch();
        r.end_flow(Time::from_ps(10), id);
        assert!(r.epoch() > e1);
    }

    #[test]
    fn capacity_degradation_stalls_and_restores() {
        let mut r = FluidResource::new("link", 1e9);
        let id = r.start_flow(Time::ZERO, 2e9, FlowSpec::new(), 1);
        assert_eq!(r.flow_rate(id), 1e9);
        // Half capacity from t = 1 s: 1 GB moved, 1 GB left at 0.5 GB/s.
        r.set_capacity_frac(Time::from_secs(1.0), 0.5);
        assert_eq!(r.capacity(), 0.5e9);
        assert_eq!(r.nominal_capacity(), 1e9);
        assert_eq!(r.flow_rate(id), 0.5e9);
        // Hard down from t = 1.5 s: the flow stalls, no wake is armed.
        r.set_capacity_frac(Time::from_secs(1.5), 0.0);
        assert_eq!(r.flow_rate(id), 0.0);
        assert_eq!(r.next_wake(), None);
        // No bytes move while down.
        r.sync(Time::from_secs(5.0));
        assert!((r.total_bytes() - 1.25e9).abs() < 1.0);
        // Link restored: 0.75 GB left at full rate → done at 5.75 s.
        r.set_capacity_frac(Time::from_secs(5.0), 1.0);
        assert_eq!(r.capacity(), 1e9);
        let w = r.next_wake().unwrap();
        assert!(w >= Time::from_secs(5.75) && w <= Time::from_secs(5.75) + Time::from_ps(4));
        r.sync(w);
        assert_eq!(drain_tokens(&mut r), vec![1]);
    }

    #[test]
    fn degradation_bumps_epoch() {
        let mut r = FluidResource::new("link", 1e9);
        r.start_flow(Time::ZERO, f64::INFINITY, FlowSpec::new(), 1);
        let e = r.epoch();
        r.set_capacity_frac(Time::from_ps(10), 0.25);
        assert!(r.epoch() > e, "stale wakeups must be invalidated");
    }

    #[test]
    #[should_panic(expected = "invalid capacity fraction")]
    fn negative_capacity_fraction_panics() {
        let mut r = FluidResource::new("link", 1e9);
        r.set_capacity_frac(Time::ZERO, -0.5);
    }

    #[test]
    #[should_panic(expected = "sync moving backwards")]
    fn sync_backwards_panics() {
        let mut r = FluidResource::new("link", 1e9);
        r.sync(Time::from_secs(1.0));
        r.sync(Time::from_ms(1.0));
    }
}
