//! Conservative sharded parallel execution of a discrete-event simulation.
//!
//! A [`ShardedSim`] runs a set of [`ShardWorld`]s — one event queue, one
//! world each — in lockstep *synchronization windows*. Every round the
//! engine computes the global minimum next-event time `T` and lets each
//! shard execute its local events in `[T, T + L)` where `L` is the
//! *conservative lookahead*: the minimum latency of any cross-shard
//! interaction. Because a message sent at time `t ≥ T` arrives no earlier
//! than `t + L ≥ T + L`, nothing sent during a window can land inside it,
//! so the shards are causally independent within the window and may run on
//! different threads. This is the classic barrier-epoch variant of
//! conservative parallel discrete-event simulation (Chandy–Misra–Bryant
//! lookahead, with a global window instead of per-link null messages).
//!
//! # Determinism
//!
//! The merged execution is a pure function of the initial schedule — the
//! thread count changes wall-clock time only. The argument:
//!
//! 1. **Within a shard**, events execute in heap order
//!    `(time, class, src, seq)`. Local events carry `class = 1` and the
//!    shard's own FIFO sequence; deliveries carry `class = 0`, the sending
//!    shard id, and the sender's message sequence. All components are
//!    assigned by simulation logic, never by thread timing.
//! 2. **Across shards**, a delivery's heap key is fixed at *send* time.
//!    Whichever window it is merged in, it sorts identically against every
//!    other event — deliveries cannot race with same-time local events
//!    because `class` orders them first, deterministically. Hence the
//!    execution order is independent of where window boundaries fall, and
//!    in particular equals the windowless sequential merge (the reference
//!    oracle in this module's tests executes exactly that merge).
//! 3. **Window boundaries themselves** are a function of queue contents
//!    only (`T` = global min, horizon = `T + L`), so rounds, barrier
//!    operations, and message counts are also thread-invariant.
//! 4. Threads only decide *which core* executes a shard's window; shards
//!    share no state (barrier operations run single-threaded between
//!    windows), so the final state is identical for any thread count.
//!
//! # Costs
//!
//! Each round is two barrier crossings plus one outbox merge; the engine
//! reports [`EngineStats`] (payload events vs. synchronization rounds and
//! messages) so perf budgets can cap protocol overhead separately from
//! model work.

use crate::engine::{Outgoing, Scheduler, World};
use crate::sanitizer;
use crate::time::Time;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Barrier, Mutex, MutexGuard, PoisonError};

/// A world that can run as one shard of a [`ShardedSim`].
///
/// `handle` (from [`World`]) services this shard's own events and may call
/// [`Scheduler::send`] / [`Scheduler::defer_global`]; `handle_global`
/// services deferred barrier operations with every shard in scope.
pub trait ShardWorld: World + Send {
    /// Executes one barrier operation at the end of a window, with
    /// exclusive access to all shards (`shards[i]` is shard `i`'s world).
    /// Runs single-threaded at simulated time `at` (the window horizon);
    /// operations execute in deterministic (shard id, defer order) order.
    fn handle_global(shards: &mut [&mut Self], at: Time, ev: Self::Event)
    where
        Self: Sized,
    {
        let _ = (shards, at, ev);
    }
}

/// Engine-work accounting split into model payload and sync protocol.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Payload events executed by shard worlds (the model's work).
    pub events: u64,
    /// Synchronization rounds (windows / barrier epochs).
    pub rounds: u64,
    /// Cross-shard messages merged through the deterministic mailboxes.
    pub messages: u64,
}

/// Thread count from `SMARTDS_THREADS`, defaulting to 1 (sequential).
///
/// Parallel execution is opt-in: tiny simulations are dominated by barrier
/// wake-ups, so the engine never silently fans out.
pub fn env_threads() -> usize {
    std::env::var("SMARTDS_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(1)
}

struct Cell<W: ShardWorld> {
    world: W,
    sched: Scheduler<W::Event>,
    executed: u64,
}

/// A sharded simulation: per-shard event queues synchronized by
/// conservative lookahead windows. See the module docs for the protocol
/// and determinism argument.
pub struct ShardedSim<W: ShardWorld> {
    cells: Vec<Mutex<Cell<W>>>,
    lookahead: Time,
    threads: usize,
    rounds: u64,
    messages: u64,
    /// Every window horizon, in round order — the epoch sequence the
    /// property suite asserts is thread-invariant.
    #[cfg(test)]
    epoch_log: Vec<u64>,
}

fn lock<W: ShardWorld>(cell: &Mutex<Cell<W>>) -> MutexGuard<'_, Cell<W>> {
    // A poisoned lock means a worker panicked mid-window; the panic is
    // already propagating through the thread scope, so recovering the
    // guard here only serves unwinding code.
    cell.lock().unwrap_or_else(PoisonError::into_inner)
}

fn get_mut<W: ShardWorld>(cell: &mut Mutex<Cell<W>>) -> &mut Cell<W> {
    cell.get_mut().unwrap_or_else(PoisonError::into_inner)
}

/// Executes one shard's events strictly below `horizon`.
///
/// `shard` is the cell's index in the world vector; each event is
/// bracketed by a `shardsan` mode update so ownership checks inside
/// `World::handle` know which shard the worker is executing (and can
/// stamp time + seq into a violation report). The caller resets the
/// worker's mode with [`sanitizer::exit_parallel`] once its shards for
/// the window are done.
fn run_window<W: ShardWorld>(shard: u32, cell: &mut Cell<W>, horizon: Time) {
    while !cell.sched.is_stopped() {
        match cell.sched.next_time() {
            Some(t) if t < horizon => {}
            _ => break,
        }
        let Some(s) = cell.sched.pop() else { break };
        cell.sched.set_now(s.at);
        cell.executed += 1;
        sanitizer::enter_event(shard, s.at, s.seq);
        cell.world.handle(s.event, &mut cell.sched);
    }
}

impl<W: ShardWorld> ShardedSim<W>
where
    W::Event: Send,
{
    /// Builds an engine over `worlds` (shard `i` = `worlds[i]`) with the
    /// given conservative lookahead. Thread count defaults to
    /// [`env_threads`]; override with [`ShardedSim::with_threads`].
    ///
    /// # Panics
    ///
    /// Panics when `worlds` is empty or `lookahead` is zero (a zero
    /// lookahead admits same-window causality and would serialize every
    /// event anyway).
    pub fn new(worlds: Vec<W>, lookahead: Time) -> Self {
        assert!(!worlds.is_empty(), "a sharded sim needs at least one shard");
        assert!(lookahead > Time::ZERO, "lookahead must be positive");
        let cells = worlds
            .into_iter()
            .enumerate()
            .map(|(i, world)| {
                let mut sched = Scheduler::new();
                sched.enable_remote(i as u32, lookahead);
                Mutex::new(Cell {
                    world,
                    sched,
                    executed: 0,
                })
            })
            .collect();
        ShardedSim {
            cells,
            lookahead,
            threads: env_threads(),
            rounds: 0,
            messages: 0,
            #[cfg(test)]
            epoch_log: Vec::new(),
        }
    }

    /// Sets the worker-thread count (1 = run every shard inline). The
    /// simulated outcome is identical for any value; only wall time moves.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.cells.len()
    }

    /// The conservative lookahead window the engine was built with: no
    /// cross-shard message may travel less than this much simulated time.
    /// Callers deriving the window from model latencies (e.g. the minimum
    /// hub↔server path of a rack topology) can assert it round-trips.
    pub fn lookahead(&self) -> Time {
        self.lookahead
    }

    /// Schedules an event on shard `shard` before the run starts.
    pub fn schedule_at(&mut self, shard: usize, at: Time, event: W::Event) {
        get_mut(&mut self.cells[shard]).sched.schedule_at(at, event);
    }

    /// Shard `shard`'s current simulated time.
    pub fn now(&mut self, shard: usize) -> Time {
        get_mut(&mut self.cells[shard]).sched.now()
    }

    /// Exclusive access to shard `shard`'s world.
    pub fn world_mut(&mut self, shard: usize) -> &mut W {
        &mut get_mut(&mut self.cells[shard]).world
    }

    /// Consumes the engine, returning the shard worlds in shard order.
    pub fn into_worlds(self) -> Vec<W> {
        self.cells
            .into_iter()
            .map(|c| c.into_inner().unwrap_or_else(PoisonError::into_inner).world)
            .collect()
    }

    /// Total payload events executed across all shards.
    pub fn executed(&mut self) -> u64 {
        (0..self.cells.len())
            .map(|i| get_mut(&mut self.cells[i]).executed)
            .sum()
    }

    /// Payload / synchronization accounting for the run so far.
    pub fn stats(&mut self) -> EngineStats {
        EngineStats {
            events: self.executed(),
            rounds: self.rounds,
            messages: self.messages,
        }
    }

    /// Runs to completion: until every queue drains past its horizon or a
    /// shard calls [`Scheduler::stop`] (the run ends after that window).
    pub fn run(&mut self) {
        let n = self.cells.len();
        let threads = self.threads.min(n).max(1);
        // One barrier party per worker, coordinator included. With a single
        // thread the waits are free and the loop degenerates to an inline
        // sweep over the shards — same code path, same outcome.
        let barrier = Barrier::new(threads);
        let horizon_ps = AtomicU64::new(0);
        let done = AtomicBool::new(false);
        let cells = &self.cells;
        let mut rounds = 0u64;
        let mut messages = 0u64;
        let lookahead = self.lookahead;
        #[cfg(test)]
        let mut epochs: Vec<u64> = Vec::new();
        std::thread::scope(|scope| {
            for w in 1..threads {
                let barrier = &barrier;
                let horizon_ps = &horizon_ps;
                let done = &done;
                scope.spawn(move || loop {
                    barrier.wait();
                    if done.load(Ordering::Acquire) {
                        break;
                    }
                    let h = Time::from_ps(horizon_ps.load(Ordering::Acquire));
                    for i in (w..n).step_by(threads) {
                        run_window(i as u32, &mut lock(&cells[i]), h);
                    }
                    sanitizer::exit_parallel();
                    barrier.wait();
                });
            }
            loop {
                let Some(t) = min_next(cells) else { break };
                let horizon = t.saturating_add(lookahead);
                rounds += 1;
                #[cfg(test)]
                epochs.push(horizon.as_ps());
                horizon_ps.store(horizon.as_ps(), Ordering::Release);
                barrier.wait();
                for i in (0..n).step_by(threads) {
                    run_window(i as u32, &mut lock(&cells[i]), horizon);
                }
                sanitizer::exit_parallel();
                barrier.wait();
                if merge_windows(cells, horizon, &mut messages) {
                    break;
                }
            }
            done.store(true, Ordering::Release);
            barrier.wait();
        });
        self.rounds += rounds;
        self.messages += messages;
        #[cfg(test)]
        self.epoch_log.append(&mut epochs);
    }
}

/// Global minimum next-event time across shards.
fn min_next<W: ShardWorld>(cells: &[Mutex<Cell<W>>]) -> Option<Time> {
    cells.iter().filter_map(|c| lock(c).sched.next_time()).min()
}

/// Post-window barrier work: merge outboxes into destination queues, run
/// deferred barrier operations, and report whether any shard requested a
/// stop. Single-threaded; fully deterministic (shards are visited in shard
/// order, operations keep defer order).
fn merge_windows<W: ShardWorld>(
    cells: &[Mutex<Cell<W>>],
    horizon: Time,
    messages: &mut u64,
) -> bool {
    // Only the coordinator runs here, after the post-window barrier:
    // Barrier mode lets ownership checks pass while `assert_barrier`
    // call sites in `handle_global` paths verify they really are at a
    // window boundary.
    sanitizer::enter_barrier(horizon);
    let n = cells.len();
    let mut stop = false;
    let mut msgs: Vec<(u32, Outgoing<W::Event>)> = Vec::new();
    let mut globals: Vec<W::Event> = Vec::new();
    for (src, cell) in cells.iter().enumerate() {
        let mut c = lock(cell);
        for m in c.sched.take_outbox() {
            msgs.push((src as u32, m));
        }
        globals.append(&mut c.sched.take_globals());
        stop |= c.sched.is_stopped();
    }
    for (src, m) in msgs {
        assert!((m.dst as usize) < n, "message to unknown shard {}", m.dst);
        assert!(
            m.at >= horizon,
            "lookahead violation: arrival {:?} inside window ending {horizon:?}",
            m.at
        );
        *messages += 1;
        lock(&cells[m.dst as usize])
            .sched
            .deliver(m.at, src, m.seq, m.event);
    }
    if !globals.is_empty() {
        let mut guards: Vec<MutexGuard<'_, Cell<W>>> = cells.iter().map(lock).collect();
        let mut worlds: Vec<&mut W> = guards.iter_mut().map(|g| &mut g.world).collect();
        for ev in globals {
            W::handle_global(&mut worlds, horizon, ev);
        }
    }
    sanitizer::exit_barrier();
    stop
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    /// Toy cross-shard RPC model: shard 0 ("hub") issues requests to store
    /// shards, each serves after a service delay and acks back. Mirrors
    /// the cluster's hub/storage decomposition with none of its weight.
    #[derive(Clone, Debug)]
    enum TEv {
        /// Hub: issue request `id` to shard `dst` (service time in ps).
        Issue { id: u64, dst: u32, service: u64 },
        /// Store shard: request arrived.
        Serve { id: u64 },
        /// Store shard: service finished.
        Done { id: u64 },
        /// Hub: ack for `id` arrived.
        Ack { id: u64 },
        /// Local no-op, for tie-break stress.
        Tick(u64),
    }

    const LOOKAHEAD: Time = Time::from_ps(1_000);

    #[derive(Default)]
    struct Node {
        /// Execution log: `(time ps, discriminant, id)` per handled event.
        log: Vec<(u64, u8, u64)>,
        /// Hub only: completion time per request id.
        completions: BTreeMap<u64, u64>,
        /// Store only: in-service backlog → deterministic extra delay.
        backlog: u64,
    }

    fn disc(ev: &TEv) -> (u8, u64) {
        match ev {
            TEv::Issue { id, .. } => (0, *id),
            TEv::Serve { id } => (1, *id),
            TEv::Done { id } => (2, *id),
            TEv::Ack { id } => (3, *id),
            TEv::Tick(id) => (4, *id),
        }
    }

    impl World for Node {
        type Event = TEv;
        fn handle(&mut self, ev: TEv, sched: &mut Scheduler<TEv>) {
            let (d, id) = disc(&ev);
            self.log.push((sched.now().as_ps(), d, id));
            match ev {
                TEv::Issue { id, dst, service } => {
                    sched.send(dst, LOOKAHEAD, TEv::Serve { id });
                    // Service time rides in the id map via backlog on the
                    // store side; stash it through the id (tests use
                    // id-derived service below), so nothing else needed.
                    let _ = service;
                }
                TEv::Serve { id } => {
                    // Deterministic service: id-derived plus backlog skew.
                    let service = 500 + (id % 7) * 131 + self.backlog * 17;
                    self.backlog += 1;
                    sched.schedule_in(Time::from_ps(service), TEv::Done { id });
                }
                TEv::Done { id } => {
                    self.backlog = self.backlog.saturating_sub(1);
                    sched.send(0, LOOKAHEAD, TEv::Ack { id });
                }
                TEv::Ack { id } => {
                    self.completions.insert(id, sched.now().as_ps());
                }
                TEv::Tick(_) => {}
            }
        }
    }

    impl ShardWorld for Node {}

    /// A seeded op script: `(shard, at ps, event)` pre-run schedule.
    type Script = Vec<(usize, u64, TEv)>;

    /// The single-shard reference engine: a windowless sequential merge.
    /// Repeatedly executes the globally minimal event (per-shard heaps
    /// compare by the same `(time, class, src, seq)` key; cross-shard ties
    /// cannot interact, broken by shard id) and delivers any messages it
    /// sent immediately. No lookahead, no windows — the oracle the
    /// windowed engine must match exactly.
    fn run_reference(stores: usize, script: &Script) -> (Vec<Node>, Vec<u64>) {
        let mut cells: Vec<(Node, Scheduler<TEv>, u64)> = build_worlds(stores)
            .into_iter()
            .enumerate()
            .map(|(i, w)| {
                let mut s = Scheduler::new();
                s.enable_remote(i as u32, LOOKAHEAD);
                (w, s, 0u64)
            })
            .collect();
        for (shard, at, ev) in script {
            cells[*shard].1.schedule_at(Time::from_ps(*at), ev.clone());
        }
        loop {
            // Peek every shard's head key by popping and re-delivering is
            // invasive; instead compare next_time and, on ties, pop the
            // candidate with the smallest full key via a two-phase peek.
            let next: Option<(Time, usize)> = cells
                .iter()
                .enumerate()
                .filter_map(|(i, c)| c.1.next_time().map(|t| (t, i)))
                .min();
            let Some((_, shard)) = next else { break };
            // Cross-shard same-time ties: shards only interact through
            // messages ≥ lookahead away, so any execution order of a
            // same-time tie across *different* shards yields the same
            // state; shard-id order keeps the oracle itself deterministic.
            let (w, s, ex) = &mut cells[shard];
            let Some(ev) = s.pop() else { continue };
            s.set_now(ev.at);
            *ex += 1;
            w.handle(ev.event, s);
            let out = s.take_outbox();
            for m in out {
                let src = shard as u32;
                cells[m.dst as usize].1.deliver(m.at, src, m.seq, m.event);
            }
        }
        let counts = cells.iter().map(|c| c.2).collect();
        (cells.into_iter().map(|c| c.0).collect(), counts)
    }

    /// The fixed seeded op script: issues with deliberate time collisions
    /// (same issue instants, acks converging on the hub at equal times)
    /// to stress the deterministic mailbox tie-breaks.
    fn fixed_script(stores: usize) -> Script {
        let mut script: Script = Vec::new();
        for id in 0..40u64 {
            // Bursts of 4 issues share one timestamp.
            let at = 10 + (id / 4) * 700;
            let dst = (id % stores as u64) as u32 + 1;
            script.push((
                0,
                at,
                TEv::Issue {
                    id,
                    dst,
                    service: 0,
                },
            ));
        }
        // Same-time local ticks on the hub collide with ack deliveries.
        for k in 0..30u64 {
            script.push((0, 1_510 + k * 100, TEv::Tick(k)));
        }
        // Ticks on a store shard collide with serve deliveries.
        for k in 0..10u64 {
            script.push((1, 1_010 + k * 700, TEv::Tick(100 + k)));
        }
        script
    }

    const STORES: usize = 3;

    fn build_worlds(stores: usize) -> Vec<Node> {
        (0..stores + 1).map(|_| Node::default()).collect()
    }

    /// Runs the windowed engine; returns worlds, stats, per-shard executed
    /// counts, and the epoch (window-horizon) sequence.
    fn run_sharded(
        stores: usize,
        script: &Script,
        threads: usize,
    ) -> (Vec<Node>, EngineStats, Vec<u64>, Vec<u64>) {
        let mut sim =
            ShardedSim::new(build_worlds(stores), LOOKAHEAD).with_threads(threads);
        for (shard, at, ev) in script {
            sim.schedule_at(*shard, Time::from_ps(*at), ev.clone());
        }
        sim.run();
        let stats = sim.stats();
        let counts: Vec<u64> = (0..stores + 1)
            .map(|i| get_mut(&mut sim.cells[i]).executed)
            .collect();
        let epochs = sim.epoch_log.clone();
        (sim.into_worlds(), stats, counts, epochs)
    }

    /// Core property: for a given topology and script, the windowed engine
    /// at every thread count matches the windowless oracle event-for-event,
    /// and the sync protocol (epoch sequence, message/round counts) is
    /// thread-invariant.
    fn assert_matches_oracle(stores: usize, script: &Script) {
        let (ref_worlds, ref_counts) = run_reference(stores, script);
        let mut first: Option<(EngineStats, Vec<u64>)> = None;
        for threads in [1, 2, 4] {
            let (worlds, stats, counts, epochs) = run_sharded(stores, script, threads);
            assert_eq!(
                counts, ref_counts,
                "threads={threads}: per-shard executed-event counts drifted"
            );
            for (i, (w, r)) in worlds.iter().zip(&ref_worlds).enumerate() {
                assert_eq!(
                    w.log, r.log,
                    "threads={threads}: shard {i} execution log drifted from oracle"
                );
                assert_eq!(
                    w.completions, r.completions,
                    "threads={threads}: shard {i} completion times drifted"
                );
            }
            match &first {
                None => first = Some((stats, epochs)),
                Some((s1, e1)) => {
                    assert_eq!(&stats, s1, "threads={threads}: stats drifted");
                    assert_eq!(&epochs, e1, "threads={threads}: epoch sequence drifted");
                }
            }
        }
    }

    #[test]
    fn windowed_execution_matches_windowless_reference_oracle() {
        assert_matches_oracle(STORES, &fixed_script(STORES));
    }

    #[test]
    fn thread_count_never_changes_outcome_or_sync_protocol() {
        let script = fixed_script(STORES);
        let (base, stats1, counts1, epochs1) = run_sharded(STORES, &script, 1);
        for threads in [2, 3, 4, 8] {
            let (worlds, stats, counts, epochs) = run_sharded(STORES, &script, threads);
            assert_eq!(stats, stats1, "threads={threads}: stats drifted");
            assert_eq!(counts, counts1, "threads={threads}");
            assert_eq!(epochs, epochs1, "threads={threads}: epoch sequence drifted");
            for (w, b) in worlds.iter().zip(&base) {
                assert_eq!(w.log, b.log, "threads={threads}");
            }
        }
        assert!(stats1.messages > 0 && stats1.rounds > 0);
    }

    // Random topologies (1–6 store shards) and seeded op scripts, shrunk by
    // testkit on failure. Times are quantized to quarter-lookahead slots so
    // same-instant collisions (the tie-break stress) are common, and every
    // store gets both cross-shard traffic and colliding local ticks.
    testkit::prop! {
        cases = 32;

        fn random_topology_and_script_match_reference_oracle(
            stores in testkit::gen::u64s(1..=6),
            issues in testkit::gen::vecs(
                (testkit::gen::u64s(0..40), testkit::gen::u64s(0..6)),
                1..=60,
            ),
            ticks in testkit::gen::vecs(
                (testkit::gen::u64s(0..80), testkit::gen::u64s(0..7)),
                0..=30,
            ),
        ) {
            let stores = stores as usize;
            let slot = LOOKAHEAD.as_ps() / 4;
            let mut script: Script = Vec::new();
            for (id, (at_slot, dst)) in issues.iter().enumerate() {
                script.push((
                    0,
                    10 + at_slot * slot,
                    TEv::Issue {
                        id: id as u64,
                        dst: (dst % stores as u64) as u32 + 1,
                        service: 0,
                    },
                ));
            }
            for (k, (at_slot, shard)) in ticks.iter().enumerate() {
                let shard = (*shard as usize) % (stores + 1);
                script.push((shard, at_slot * slot, TEv::Tick(1_000 + k as u64)));
            }
            assert_matches_oracle(stores, &script);
        }
    }

    #[test]
    fn deliveries_order_by_src_then_seq_and_before_same_time_locals() {
        // Two stores ack at the same instant; the hub also has a local
        // tick at exactly that time. Canonical order: delivery from shard
        // 1, delivery from shard 2, then the local tick.
        #[derive(Default)]
        struct Probe {
            order: Vec<(u8, u64)>,
        }
        #[derive(Clone, Debug)]
        enum PEv {
            Fire { id: u64 },
            Note { id: u64 },
        }
        impl World for Probe {
            type Event = PEv;
            fn handle(&mut self, ev: PEv, sched: &mut Scheduler<PEv>) {
                match ev {
                    PEv::Fire { id } => sched.send(0, LOOKAHEAD, PEv::Note { id }),
                    PEv::Note { id } => self.order.push((0, id)),
                }
            }
        }
        impl ShardWorld for Probe {}
        let mut sim = ShardedSim::new(
            vec![Probe::default(), Probe::default(), Probe::default()],
            LOOKAHEAD,
        )
        .with_threads(2);
        // Both fires happen at t=10 → both notes arrive at t=1010. Shard 2
        // fires *first* in wall order, but src order must win.
        sim.schedule_at(2, Time::from_ps(10), PEv::Fire { id: 20 });
        sim.schedule_at(1, Time::from_ps(10), PEv::Fire { id: 10 });
        // A local hub event at the exact arrival instant: sorts after.
        sim.schedule_at(0, Time::from_ps(1_010), PEv::Note { id: 99 });
        sim.run();
        let worlds = sim.into_worlds();
        assert_eq!(
            worlds[0].order,
            vec![(0, 10), (0, 20), (0, 99)],
            "mailbox merge order must be (time, src shard, seq), before locals"
        );
    }

    #[test]
    fn lookahead_accessor_round_trips() {
        #[derive(Clone, Debug)]
        struct Noop;
        struct NoopWorld;
        impl World for NoopWorld {
            type Event = Noop;
            fn handle(&mut self, _: Noop, _: &mut Scheduler<Noop>) {}
        }
        impl ShardWorld for NoopWorld {}
        let sim = ShardedSim::new(vec![NoopWorld, NoopWorld], LOOKAHEAD);
        assert_eq!(sim.lookahead(), LOOKAHEAD);
    }

    #[test]
    #[should_panic(expected = "below lookahead")]
    fn short_cross_shard_delay_panics() {
        #[derive(Clone, Debug)]
        struct Bad;
        struct BadWorld;
        impl World for BadWorld {
            type Event = Bad;
            fn handle(&mut self, _: Bad, sched: &mut Scheduler<Bad>) {
                sched.send(1, Time::from_ps(1), Bad);
            }
        }
        impl ShardWorld for BadWorld {}
        let mut sim = ShardedSim::new(vec![BadWorld, BadWorld], LOOKAHEAD);
        sim.schedule_at(0, Time::from_ps(5), Bad);
        sim.run();
    }

    #[test]
    #[should_panic(expected = "outside the sharded engine")]
    fn send_under_plain_simulation_panics() {
        struct SendWorld;
        impl World for SendWorld {
            type Event = u32;
            fn handle(&mut self, _: u32, sched: &mut Scheduler<u32>) {
                sched.send(1, LOOKAHEAD, 0);
            }
        }
        let mut sim = crate::Simulation::new(SendWorld);
        sim.schedule_at(Time::from_ps(1), 0);
        sim.run();
    }

    #[test]
    fn stop_ends_the_run_after_the_current_window() {
        struct Stopper {
            seen: Vec<u64>,
        }
        #[derive(Clone, Debug)]
        enum SEv {
            Stop,
            Later(u64),
        }
        impl World for Stopper {
            type Event = SEv;
            fn handle(&mut self, ev: SEv, sched: &mut Scheduler<SEv>) {
                match ev {
                    SEv::Stop => sched.stop(),
                    SEv::Later(i) => self.seen.push(i),
                }
            }
        }
        impl ShardWorld for Stopper {}
        let mut sim =
            ShardedSim::new(vec![Stopper { seen: vec![] }], Time::from_ps(100));
        sim.schedule_at(0, Time::from_ps(10), SEv::Stop);
        // Far beyond the stop window: must never run.
        sim.schedule_at(0, Time::from_ps(100_000), SEv::Later(1));
        sim.run();
        assert!(sim.into_worlds()[0].seen.is_empty());
    }

    #[test]
    fn global_ops_run_at_the_horizon_with_all_shards() {
        #[derive(Clone, Debug)]
        enum GEv {
            Defer,
            Bump,
        }
        #[derive(Default)]
        struct GNode {
            bumped: u64,
            global_at: Vec<u64>,
        }
        impl World for GNode {
            type Event = GEv;
            fn handle(&mut self, ev: GEv, sched: &mut Scheduler<GEv>) {
                match ev {
                    GEv::Defer => sched.defer_global(GEv::Bump),
                    GEv::Bump => {}
                }
            }
        }
        impl ShardWorld for GNode {
            fn handle_global(shards: &mut [&mut Self], at: Time, ev: GEv) {
                if matches!(ev, GEv::Bump) {
                    for s in shards.iter_mut() {
                        s.bumped += 1;
                        s.global_at.push(at.as_ps());
                    }
                }
            }
        }
        let mut sim = ShardedSim::new(
            vec![GNode::default(), GNode::default()],
            Time::from_ps(1_000),
        )
        .with_threads(2);
        sim.schedule_at(0, Time::from_ps(42), GEv::Defer);
        sim.run();
        for w in sim.into_worlds() {
            assert_eq!(w.bumped, 1);
            // Horizon of the window containing t=42: 42 + 1000.
            assert_eq!(w.global_at, vec![1_042]);
        }
    }
}
