//! Conservative sharded parallel execution of a discrete-event simulation.
//!
//! A [`ShardedSim`] runs a set of [`ShardWorld`]s — one event queue, one
//! world each — in lockstep *synchronization windows*. Every round the
//! engine computes the global minimum next-event time `T` and lets each
//! shard execute its local events in `[T, T + L)` where `L` is the
//! *conservative lookahead*: the minimum latency of any cross-shard
//! interaction. Because a message sent at time `t ≥ T` arrives no earlier
//! than `t + L ≥ T + L`, nothing sent during a window can land inside it,
//! so the shards are causally independent within the window and may run on
//! different threads. This is the classic barrier-epoch variant of
//! conservative parallel discrete-event simulation (Chandy–Misra–Bryant
//! lookahead, with a global window instead of per-link null messages).
//!
//! # Determinism
//!
//! The merged execution is a pure function of the initial schedule — the
//! thread count changes wall-clock time only. The argument:
//!
//! 1. **Within a shard**, events execute in heap order
//!    `(time, class, src, seq)`. Local events carry `class = 1` and the
//!    shard's own FIFO sequence; deliveries carry `class = 0`, the sending
//!    shard id, and the sender's message sequence. All components are
//!    assigned by simulation logic, never by thread timing.
//! 2. **Across shards**, a delivery's heap key is fixed at *send* time.
//!    Whichever window it is merged in, it sorts identically against every
//!    other event — deliveries cannot race with same-time local events
//!    because `class` orders them first, deterministically. Hence the
//!    execution order is independent of where window boundaries fall, and
//!    in particular equals the windowless sequential merge (the reference
//!    oracle in this module's tests executes exactly that merge).
//! 3. **Window boundaries themselves** are a function of queue contents
//!    only (`T` = global min, horizon = `T + L`), so rounds, barrier
//!    operations, and message counts are also thread-invariant.
//! 4. Threads only decide *which core* executes a shard's window; shards
//!    share no state (barrier operations run single-threaded between
//!    windows), so the final state is identical for any thread count.
//!
//! # Pair lookahead
//!
//! The flat window above derives everyone's horizon from the *global*
//! minimum next-event time and the single worst-case lookahead `L`. When
//! the model's communication graph is known, that is pessimistic:
//! [`ShardedSim::with_pair_lookahead`] accepts a per-(sender, receiver)
//! matrix of minimum direct message latencies, closes it transitively
//! (Floyd–Warshall over walks of ≥ 1 hop, so `D⁺(i, i)` is the minimum
//! round-trip cycle), and widens each shard's horizon to
//! `hᵢ = min over j of (Nⱼ + D⁺(j, i))` where `Nⱼ` is shard `j`'s next
//! event. A message from `j` can reach `i` no earlier than `Nⱼ + D(j, i)`
//! — directly or through any relay chain — so every shard still executes
//! strictly inside its causal safe zone and the merged schedule is
//! *identical* to the flat window's; only the number of synchronization
//! rounds drops. Barrier operations ([`Scheduler::defer_global`]) are
//! incompatible with per-shard horizons (they need every shard paused at
//! one instant) and panic in this mode, so drivers only opt in for runs
//! that cannot defer globals.
//!
//! # Costs
//!
//! Each round is two barrier crossings plus one outbox merge; the engine
//! reports [`EngineStats`] (payload events vs. synchronization rounds and
//! messages) so perf budgets can cap protocol overhead separately from
//! model work. With one worker thread the engine skips the scoped-thread
//! machinery entirely — no spawns, no barriers, no atomics — and sweeps
//! the shards inline; the executed schedule is byte-identical by
//! construction and pinned by a test. Cross-shard traffic moves through
//! per-(sender, receiver) growable buffers that are swapped, drained, and
//! swapped back each epoch, so the mailbox path allocates nothing in
//! steady state.

use crate::engine::{Outgoing, Scheduler, World};
use crate::sanitizer;
use crate::time::Time;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Barrier, Mutex, MutexGuard, PoisonError};

/// A world that can run as one shard of a [`ShardedSim`].
///
/// `handle` (from [`World`]) services this shard's own events and may call
/// [`Scheduler::send`] / [`Scheduler::defer_global`]; `handle_global`
/// services deferred barrier operations with every shard in scope.
pub trait ShardWorld: World + Send {
    /// Executes one barrier operation at the end of a window, with
    /// exclusive access to all shards (`shards[i]` is shard `i`'s world).
    /// Runs single-threaded at simulated time `at` (the window horizon);
    /// operations execute in deterministic (shard id, defer order) order.
    fn handle_global(shards: &mut [&mut Self], at: Time, ev: Self::Event)
    where
        Self: Sized,
    {
        let _ = (shards, at, ev);
    }
}

/// Engine-work accounting split into model payload and sync protocol.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Payload events executed by shard worlds (the model's work).
    pub events: u64,
    /// Synchronization rounds (windows / barrier epochs).
    pub rounds: u64,
    /// Cross-shard messages merged through the deterministic mailboxes.
    pub messages: u64,
}

/// Thread count from `SMARTDS_THREADS`, defaulting to 1 (sequential).
///
/// Parallel execution is opt-in: tiny simulations are dominated by barrier
/// wake-ups, so the engine never silently fans out.
pub fn env_threads() -> usize {
    std::env::var("SMARTDS_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(1)
}

struct Cell<W: ShardWorld> {
    world: W,
    sched: Scheduler<W::Event>,
    executed: u64,
}

/// A sharded simulation: per-shard event queues synchronized by
/// conservative lookahead windows. See the module docs for the protocol
/// and determinism argument.
pub struct ShardedSim<W: ShardWorld> {
    cells: Vec<Mutex<Cell<W>>>,
    lookahead: Time,
    /// Transitive closure `D⁺` of the pair-latency matrix (`n × n`,
    /// sender-major), when pair-lookahead windows are enabled.
    matrix: Option<Vec<Time>>,
    threads: usize,
    rounds: u64,
    messages: u64,
    /// Per-(sender, receiver) mailbox buffers (`n × n`, sender-major),
    /// swapped against each scheduler's outboxes at every barrier so the
    /// merge reuses their capacity instead of allocating per round.
    mail: Vec<Vec<Outgoing<W::Event>>>,
    /// Every window horizon, in round order (per-shard horizons in matrix
    /// mode) — the epoch sequence the property suite asserts is
    /// thread-invariant.
    #[cfg(test)]
    epoch_log: Vec<u64>,
}

fn lock<W: ShardWorld>(cell: &Mutex<Cell<W>>) -> MutexGuard<'_, Cell<W>> {
    // A poisoned lock means a worker panicked mid-window; the panic is
    // already propagating through the thread scope, so recovering the
    // guard here only serves unwinding code.
    cell.lock().unwrap_or_else(PoisonError::into_inner)
}

fn get_mut<W: ShardWorld>(cell: &mut Mutex<Cell<W>>) -> &mut Cell<W> {
    cell.get_mut().unwrap_or_else(PoisonError::into_inner)
}

/// Executes one shard's events strictly below `horizon`.
///
/// `shard` is the cell's index in the world vector; each event is
/// bracketed by a `shardsan` mode update so ownership checks inside
/// `World::handle` know which shard the worker is executing (and can
/// stamp time + seq into a violation report). The caller resets the
/// worker's mode with [`sanitizer::exit_parallel`] once its shards for
/// the window are done.
fn run_window<W: ShardWorld>(shard: u32, cell: &mut Cell<W>, horizon: Time) {
    while !cell.sched.is_stopped() {
        let Some(s) = cell.sched.pop_if_before(horizon) else {
            break;
        };
        cell.sched.set_now(s.at);
        cell.executed += 1;
        sanitizer::enter_event(shard, s.at, s.seq);
        cell.world.handle(s.event, &mut cell.sched);
    }
}

impl<W: ShardWorld> ShardedSim<W>
where
    W::Event: Send,
{
    /// Builds an engine over `worlds` (shard `i` = `worlds[i]`) with the
    /// given conservative lookahead. Thread count defaults to
    /// [`env_threads`]; override with [`ShardedSim::with_threads`].
    ///
    /// # Panics
    ///
    /// Panics when `worlds` is empty or `lookahead` is zero (a zero
    /// lookahead admits same-window causality and would serialize every
    /// event anyway).
    pub fn new(worlds: Vec<W>, lookahead: Time) -> Self {
        assert!(!worlds.is_empty(), "a sharded sim needs at least one shard");
        assert!(lookahead > Time::ZERO, "lookahead must be positive");
        let n = worlds.len();
        let cells: Vec<Mutex<Cell<W>>> = worlds
            .into_iter()
            .enumerate()
            .map(|(i, world)| {
                let mut sched = Scheduler::new();
                sched.enable_remote(i as u32, lookahead, n);
                Mutex::new(Cell {
                    world,
                    sched,
                    executed: 0,
                })
            })
            .collect();
        ShardedSim {
            cells,
            lookahead,
            matrix: None,
            threads: env_threads(),
            rounds: 0,
            messages: 0,
            mail: (0..n * n).map(|_| Vec::new()).collect(),
            #[cfg(test)]
            epoch_log: Vec::new(),
        }
    }

    /// Sets the worker-thread count (1 = run every shard inline). The
    /// simulated outcome is identical for any value; only wall time moves.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Switches the engine to per-shard-pair conservative windows (see the
    /// module docs). `direct[i][j]` is the minimum simulated latency of any
    /// message shard `i` sends shard `j` — [`Time::MAX`] for pairs that
    /// never exchange messages directly. The engine closes the matrix
    /// transitively over ≥ 1-hop walks, so relayed causality (including
    /// round-trip self-cycles) is bounded too, and widens each round's
    /// per-shard horizon accordingly. The executed schedule is identical
    /// to flat-lookahead mode; only `rounds` in [`EngineStats`] drops. A
    /// latency claim the model then undercuts is caught by the merge-time
    /// lookahead assertion, and [`Scheduler::defer_global`] panics under
    /// this mode.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not `n × n` or any finite entry is below
    /// the engine's flat lookahead (the flat bound is what
    /// [`Scheduler::send`] enforces, so a smaller pair entry would claim
    /// traffic the send path forbids anyway).
    pub fn with_pair_lookahead(mut self, direct: Vec<Vec<Time>>) -> Self {
        let n = self.cells.len();
        assert_eq!(direct.len(), n, "pair-lookahead matrix must be n x n");
        let mut dist = vec![Time::MAX; n * n];
        for (i, row) in direct.iter().enumerate() {
            assert_eq!(row.len(), n, "pair-lookahead matrix must be n x n");
            for (j, &d) in row.iter().enumerate() {
                assert!(
                    d >= self.lookahead,
                    "pair lookahead {d:?} for ({i} -> {j}) below flat lookahead {:?}",
                    self.lookahead
                );
                dist[i * n + j] = d;
            }
        }
        // Floyd–Warshall over walks of at least one edge: with the
        // diagonal seeded from direct self-edges (usually MAX), dist[i][i]
        // converges to the minimum round-trip cycle through any relay.
        for k in 0..n {
            for i in 0..n {
                let ik = dist[i * n + k];
                if ik == Time::MAX {
                    continue;
                }
                for j in 0..n {
                    let through = ik.saturating_add(dist[k * n + j]);
                    if through < dist[i * n + j] {
                        dist[i * n + j] = through;
                    }
                }
            }
        }
        self.matrix = Some(dist);
        self
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.cells.len()
    }

    /// The conservative lookahead window the engine was built with: no
    /// cross-shard message may travel less than this much simulated time.
    /// Callers deriving the window from model latencies (e.g. the minimum
    /// hub↔server path of a rack topology) can assert it round-trips.
    pub fn lookahead(&self) -> Time {
        self.lookahead
    }

    /// Schedules an event on shard `shard` before the run starts.
    pub fn schedule_at(&mut self, shard: usize, at: Time, event: W::Event) {
        get_mut(&mut self.cells[shard]).sched.schedule_at(at, event);
    }

    /// Shard `shard`'s current simulated time.
    pub fn now(&mut self, shard: usize) -> Time {
        get_mut(&mut self.cells[shard]).sched.now()
    }

    /// Exclusive access to shard `shard`'s world.
    pub fn world_mut(&mut self, shard: usize) -> &mut W {
        &mut get_mut(&mut self.cells[shard]).world
    }

    /// Consumes the engine, returning the shard worlds in shard order.
    pub fn into_worlds(self) -> Vec<W> {
        self.cells
            .into_iter()
            .map(|c| c.into_inner().unwrap_or_else(PoisonError::into_inner).world)
            .collect()
    }

    /// Total payload events executed across all shards.
    pub fn executed(&mut self) -> u64 {
        (0..self.cells.len())
            .map(|i| get_mut(&mut self.cells[i]).executed)
            .sum()
    }

    /// Payload / synchronization accounting for the run so far.
    pub fn stats(&mut self) -> EngineStats {
        EngineStats {
            events: self.executed(),
            rounds: self.rounds,
            messages: self.messages,
        }
    }

    /// Runs to completion: until every queue drains past its horizon or a
    /// shard calls [`Scheduler::stop`] (the run ends after that window).
    pub fn run(&mut self) {
        let n = self.cells.len();
        let threads = self.threads.min(n).max(1);
        if threads == 1 {
            self.run_inline();
        } else {
            self.run_scoped(threads);
        }
    }

    /// The single-thread path: an inline sweep over the shards with no
    /// worker spawns, no barrier crossings, and no atomics. Rounds,
    /// horizons, and the merge are computed by the same helpers as the
    /// scoped path, so the executed schedule is identical by construction
    /// (and pinned by the `inline_and_scoped_paths_are_byte_identical`
    /// test).
    fn run_inline(&mut self) {
        let n = self.cells.len();
        let mut next: Vec<Option<Time>> = vec![None; n];
        let mut horizons: Vec<Time> = vec![Time::ZERO; n];
        loop {
            if !compute_horizons(
                &self.cells,
                self.lookahead,
                self.matrix.as_deref(),
                &mut next,
                &mut horizons,
            ) {
                break;
            }
            self.rounds += 1;
            #[cfg(test)]
            self.epoch_log.extend(log_epochs(&horizons, self.matrix.is_some()));
            for (i, cell) in self.cells.iter_mut().enumerate() {
                run_window(i as u32, get_mut(cell), horizons[i]);
            }
            sanitizer::exit_parallel();
            let stop = merge_windows(
                &self.cells,
                &horizons,
                self.matrix.is_some(),
                &mut self.mail,
                &mut self.messages,
            );
            if stop {
                break;
            }
        }
    }

    /// The multi-thread path: workers sweep strided shard subsets between
    /// two barrier crossings per round; the coordinator computes horizons
    /// and merges mailboxes in between.
    fn run_scoped(&mut self, threads: usize) {
        let n = self.cells.len();
        let barrier = Barrier::new(threads);
        let horizon_ps: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        let done = AtomicBool::new(false);
        let cells = &self.cells;
        let matrix = self.matrix.as_deref();
        let mut mail = std::mem::take(&mut self.mail);
        let mut rounds = 0u64;
        let mut messages = 0u64;
        let lookahead = self.lookahead;
        let mut next: Vec<Option<Time>> = vec![None; n];
        let mut horizons: Vec<Time> = vec![Time::ZERO; n];
        #[cfg(test)]
        let mut epochs: Vec<u64> = Vec::new();
        std::thread::scope(|scope| {
            for w in 1..threads {
                let barrier = &barrier;
                let horizon_ps = &horizon_ps;
                let done = &done;
                scope.spawn(move || loop {
                    barrier.wait();
                    if done.load(Ordering::Acquire) {
                        break;
                    }
                    for i in (w..n).step_by(threads) {
                        let h = Time::from_ps(horizon_ps[i].load(Ordering::Acquire));
                        run_window(i as u32, &mut lock(&cells[i]), h);
                    }
                    sanitizer::exit_parallel();
                    barrier.wait();
                });
            }
            loop {
                if !compute_horizons(cells, lookahead, matrix, &mut next, &mut horizons) {
                    break;
                }
                rounds += 1;
                #[cfg(test)]
                epochs.extend(log_epochs(&horizons, matrix.is_some()));
                for (slot, h) in horizon_ps.iter().zip(&horizons) {
                    slot.store(h.as_ps(), Ordering::Release);
                }
                barrier.wait();
                for i in (0..n).step_by(threads) {
                    run_window(i as u32, &mut lock(&cells[i]), horizons[i]);
                }
                sanitizer::exit_parallel();
                barrier.wait();
                let stop = merge_windows(cells, &horizons, matrix.is_some(), &mut mail, &mut messages);
                if stop {
                    break;
                }
            }
            done.store(true, Ordering::Release);
            barrier.wait();
        });
        self.mail = mail;
        self.rounds += rounds;
        self.messages += messages;
        #[cfg(test)]
        self.epoch_log.append(&mut epochs);
    }
}

/// One horizon sequence entry per round: the shared horizon in flat mode,
/// every per-shard horizon in matrix mode.
#[cfg(test)]
fn log_epochs(horizons: &[Time], matrix: bool) -> Vec<u64> {
    if matrix {
        horizons.iter().map(|h| h.as_ps()).collect()
    } else {
        vec![horizons[0].as_ps()]
    }
}

/// Computes this round's per-shard horizons from every shard's next-event
/// time. Returns `false` when all queues are empty (the run is complete).
///
/// Flat mode: every horizon is `min_j(N_j) + L`. Matrix mode:
/// `h_i = min_j(N_j + D⁺(j, i))` — each shard runs to the earliest instant
/// any other shard's pending work could causally reach it, including its
/// own sends reflected back (`j = i` with the min round-trip cycle).
fn compute_horizons<W: ShardWorld>(
    cells: &[Mutex<Cell<W>>],
    lookahead: Time,
    matrix: Option<&[Time]>,
    next: &mut [Option<Time>],
    horizons: &mut [Time],
) -> bool {
    let n = cells.len();
    for (slot, cell) in next.iter_mut().zip(cells) {
        *slot = lock(cell).sched.next_time();
    }
    match matrix {
        None => {
            let Some(t) = next.iter().flatten().min().copied() else {
                return false;
            };
            horizons.fill(t.saturating_add(lookahead));
            true
        }
        Some(dist) => {
            if next.iter().all(Option::is_none) {
                return false;
            }
            for (i, h) in horizons.iter_mut().enumerate() {
                let mut bound = Time::MAX;
                for (j, nj) in next.iter().enumerate() {
                    if let Some(nj) = nj {
                        bound = bound.min(nj.saturating_add(dist[j * n + i]));
                    }
                }
                *h = bound;
            }
            true
        }
    }
}

/// Post-window barrier work: merge the per-(sender, receiver) mailbox
/// buffers into destination queues, run deferred barrier operations, and
/// report whether any shard requested a stop. Single-threaded; fully
/// deterministic (sender-major swap order, receiver-major drain order —
/// and delivery order cannot matter anyway, because the queue orders by
/// the `(time, class, src, seq)` key stamped at send time).
fn merge_windows<W: ShardWorld>(
    cells: &[Mutex<Cell<W>>],
    horizons: &[Time],
    matrix: bool,
    mail: &mut [Vec<Outgoing<W::Event>>],
    messages: &mut u64,
) -> bool {
    // Only the coordinator runs here, after the post-window barrier:
    // Barrier mode lets ownership checks pass while `assert_barrier`
    // call sites in `handle_global` paths verify they really are at a
    // window boundary.
    let barrier_at = horizons.iter().copied().min().unwrap_or(Time::ZERO);
    sanitizer::enter_barrier(barrier_at);
    let n = cells.len();
    let mut stop = false;
    let mut globals: Vec<W::Event> = Vec::new();
    for (src, cell) in cells.iter().enumerate() {
        let mut c = lock(cell);
        c.sched.swap_outboxes(&mut mail[src * n..(src + 1) * n]);
        globals.append(&mut c.sched.take_globals());
        stop |= c.sched.is_stopped();
    }
    for (dst, cell) in cells.iter().enumerate() {
        let mut c = lock(cell);
        for src in 0..n {
            let buf = &mut mail[src * n + dst];
            if buf.is_empty() {
                continue;
            }
            *messages += buf.len() as u64;
            for m in buf.drain(..) {
                assert!(
                    m.at >= horizons[dst],
                    "lookahead violation: arrival {:?} inside window ending {:?}",
                    m.at,
                    horizons[dst]
                );
                c.sched.deliver(m.at, src as u32, m.seq, m.event);
            }
        }
    }
    if !globals.is_empty() {
        assert!(
            !matrix,
            "Scheduler::defer_global under pair-lookahead windows: barrier \
             operations need every shard paused at one horizon; run this \
             workload in flat-lookahead mode"
        );
        let mut guards: Vec<MutexGuard<'_, Cell<W>>> = cells.iter().map(lock).collect();
        let mut worlds: Vec<&mut W> = guards.iter_mut().map(|g| &mut g.world).collect();
        for ev in globals {
            W::handle_global(&mut worlds, barrier_at, ev);
        }
    }
    sanitizer::exit_barrier();
    stop
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    /// Toy cross-shard RPC model: shard 0 ("hub") issues requests to store
    /// shards, each serves after a service delay and acks back. Mirrors
    /// the cluster's hub/storage decomposition with none of its weight.
    #[derive(Clone, Debug)]
    enum TEv {
        /// Hub: issue request `id` to shard `dst` (service time in ps).
        Issue { id: u64, dst: u32, service: u64 },
        /// Store shard: request arrived.
        Serve { id: u64 },
        /// Store shard: service finished.
        Done { id: u64 },
        /// Hub: ack for `id` arrived.
        Ack { id: u64 },
        /// Local no-op, for tie-break stress.
        Tick(u64),
    }

    const LOOKAHEAD: Time = Time::from_ps(1_000);

    #[derive(Default)]
    struct Node {
        /// Execution log: `(time ps, discriminant, id)` per handled event.
        log: Vec<(u64, u8, u64)>,
        /// Hub only: completion time per request id.
        completions: BTreeMap<u64, u64>,
        /// Store only: in-service backlog → deterministic extra delay.
        backlog: u64,
    }

    fn disc(ev: &TEv) -> (u8, u64) {
        match ev {
            TEv::Issue { id, .. } => (0, *id),
            TEv::Serve { id } => (1, *id),
            TEv::Done { id } => (2, *id),
            TEv::Ack { id } => (3, *id),
            TEv::Tick(id) => (4, *id),
        }
    }

    impl World for Node {
        type Event = TEv;
        fn handle(&mut self, ev: TEv, sched: &mut Scheduler<TEv>) {
            let (d, id) = disc(&ev);
            self.log.push((sched.now().as_ps(), d, id));
            match ev {
                TEv::Issue { id, dst, service } => {
                    sched.send(dst, LOOKAHEAD, TEv::Serve { id });
                    // Service time rides in the id map via backlog on the
                    // store side; stash it through the id (tests use
                    // id-derived service below), so nothing else needed.
                    let _ = service;
                }
                TEv::Serve { id } => {
                    // Deterministic service: id-derived plus backlog skew.
                    let service = 500 + (id % 7) * 131 + self.backlog * 17;
                    self.backlog += 1;
                    sched.schedule_in(Time::from_ps(service), TEv::Done { id });
                }
                TEv::Done { id } => {
                    self.backlog = self.backlog.saturating_sub(1);
                    sched.send(0, LOOKAHEAD, TEv::Ack { id });
                }
                TEv::Ack { id } => {
                    self.completions.insert(id, sched.now().as_ps());
                }
                TEv::Tick(_) => {}
            }
        }
    }

    impl ShardWorld for Node {}

    /// A seeded op script: `(shard, at ps, event)` pre-run schedule.
    type Script = Vec<(usize, u64, TEv)>;

    /// The single-shard reference engine: a windowless sequential merge.
    /// Repeatedly executes the globally minimal event (per-shard heaps
    /// compare by the same `(time, class, src, seq)` key; cross-shard ties
    /// cannot interact, broken by shard id) and delivers any messages it
    /// sent immediately. No lookahead, no windows — the oracle the
    /// windowed engine must match exactly.
    fn run_reference(stores: usize, script: &Script) -> (Vec<Node>, Vec<u64>) {
        let n = stores + 1;
        let mut cells: Vec<(Node, Scheduler<TEv>, u64)> = build_worlds(stores)
            .into_iter()
            .enumerate()
            .map(|(i, w)| {
                let mut s = Scheduler::new();
                s.enable_remote(i as u32, LOOKAHEAD, n);
                (w, s, 0u64)
            })
            .collect();
        let mut bufs: Vec<Vec<Outgoing<TEv>>> = (0..n).map(|_| Vec::new()).collect();
        for (shard, at, ev) in script {
            cells[*shard].1.schedule_at(Time::from_ps(*at), ev.clone());
        }
        loop {
            // Peek every shard's head key by popping and re-delivering is
            // invasive; instead compare next_time and, on ties, pop the
            // candidate with the smallest full key via a two-phase peek.
            let next: Option<(Time, usize)> = cells
                .iter()
                .enumerate()
                .filter_map(|(i, c)| c.1.next_time().map(|t| (t, i)))
                .min();
            let Some((_, shard)) = next else { break };
            // Cross-shard same-time ties: shards only interact through
            // messages ≥ lookahead away, so any execution order of a
            // same-time tie across *different* shards yields the same
            // state; shard-id order keeps the oracle itself deterministic.
            let (w, s, ex) = &mut cells[shard];
            let Some(ev) = s.pop() else { continue };
            s.set_now(ev.at);
            *ex += 1;
            w.handle(ev.event, s);
            s.swap_outboxes(&mut bufs);
            let src = shard as u32;
            for dst in 0..n {
                for m in bufs[dst].drain(..) {
                    cells[dst].1.deliver(m.at, src, m.seq, m.event);
                }
            }
        }
        let counts = cells.iter().map(|c| c.2).collect();
        (cells.into_iter().map(|c| c.0).collect(), counts)
    }

    /// The fixed seeded op script: issues with deliberate time collisions
    /// (same issue instants, acks converging on the hub at equal times)
    /// to stress the deterministic mailbox tie-breaks.
    fn fixed_script(stores: usize) -> Script {
        let mut script: Script = Vec::new();
        for id in 0..40u64 {
            // Bursts of 4 issues share one timestamp.
            let at = 10 + (id / 4) * 700;
            let dst = (id % stores as u64) as u32 + 1;
            script.push((
                0,
                at,
                TEv::Issue {
                    id,
                    dst,
                    service: 0,
                },
            ));
        }
        // Same-time local ticks on the hub collide with ack deliveries.
        for k in 0..30u64 {
            script.push((0, 1_510 + k * 100, TEv::Tick(k)));
        }
        // Ticks on a store shard collide with serve deliveries.
        for k in 0..10u64 {
            script.push((1, 1_010 + k * 700, TEv::Tick(100 + k)));
        }
        script
    }

    const STORES: usize = 3;

    fn build_worlds(stores: usize) -> Vec<Node> {
        (0..stores + 1).map(|_| Node::default()).collect()
    }

    /// Runs the windowed engine; returns worlds, stats, per-shard executed
    /// counts, and the epoch (window-horizon) sequence.
    fn run_sharded(
        stores: usize,
        script: &Script,
        threads: usize,
    ) -> (Vec<Node>, EngineStats, Vec<u64>, Vec<u64>) {
        let mut sim =
            ShardedSim::new(build_worlds(stores), LOOKAHEAD).with_threads(threads);
        for (shard, at, ev) in script {
            sim.schedule_at(*shard, Time::from_ps(*at), ev.clone());
        }
        sim.run();
        let stats = sim.stats();
        let counts: Vec<u64> = (0..stores + 1)
            .map(|i| get_mut(&mut sim.cells[i]).executed)
            .collect();
        let epochs = sim.epoch_log.clone();
        (sim.into_worlds(), stats, counts, epochs)
    }

    /// Core property: for a given topology and script, the windowed engine
    /// at every thread count matches the windowless oracle event-for-event,
    /// and the sync protocol (epoch sequence, message/round counts) is
    /// thread-invariant.
    fn assert_matches_oracle(stores: usize, script: &Script) {
        let (ref_worlds, ref_counts) = run_reference(stores, script);
        let mut first: Option<(EngineStats, Vec<u64>)> = None;
        for threads in [1, 2, 4] {
            let (worlds, stats, counts, epochs) = run_sharded(stores, script, threads);
            assert_eq!(
                counts, ref_counts,
                "threads={threads}: per-shard executed-event counts drifted"
            );
            for (i, (w, r)) in worlds.iter().zip(&ref_worlds).enumerate() {
                assert_eq!(
                    w.log, r.log,
                    "threads={threads}: shard {i} execution log drifted from oracle"
                );
                assert_eq!(
                    w.completions, r.completions,
                    "threads={threads}: shard {i} completion times drifted"
                );
            }
            match &first {
                None => first = Some((stats, epochs)),
                Some((s1, e1)) => {
                    assert_eq!(&stats, s1, "threads={threads}: stats drifted");
                    assert_eq!(&epochs, e1, "threads={threads}: epoch sequence drifted");
                }
            }
        }
    }

    #[test]
    fn windowed_execution_matches_windowless_reference_oracle() {
        assert_matches_oracle(STORES, &fixed_script(STORES));
    }

    #[test]
    fn thread_count_never_changes_outcome_or_sync_protocol() {
        let script = fixed_script(STORES);
        let (base, stats1, counts1, epochs1) = run_sharded(STORES, &script, 1);
        for threads in [2, 3, 4, 8] {
            let (worlds, stats, counts, epochs) = run_sharded(STORES, &script, threads);
            assert_eq!(stats, stats1, "threads={threads}: stats drifted");
            assert_eq!(counts, counts1, "threads={threads}");
            assert_eq!(epochs, epochs1, "threads={threads}: epoch sequence drifted");
            for (w, b) in worlds.iter().zip(&base) {
                assert_eq!(w.log, b.log, "threads={threads}");
            }
        }
        assert!(stats1.messages > 0 && stats1.rounds > 0);
    }

    // Random topologies (1–6 store shards) and seeded op scripts, shrunk by
    // testkit on failure. Times are quantized to quarter-lookahead slots so
    // same-instant collisions (the tie-break stress) are common, and every
    // store gets both cross-shard traffic and colliding local ticks.
    testkit::prop! {
        cases = 32;

        fn random_topology_and_script_match_reference_oracle(
            stores in testkit::gen::u64s(1..=6),
            issues in testkit::gen::vecs(
                (testkit::gen::u64s(0..40), testkit::gen::u64s(0..6)),
                1..=60,
            ),
            ticks in testkit::gen::vecs(
                (testkit::gen::u64s(0..80), testkit::gen::u64s(0..7)),
                0..=30,
            ),
        ) {
            let stores = stores as usize;
            let slot = LOOKAHEAD.as_ps() / 4;
            let mut script: Script = Vec::new();
            for (id, (at_slot, dst)) in issues.iter().enumerate() {
                script.push((
                    0,
                    10 + at_slot * slot,
                    TEv::Issue {
                        id: id as u64,
                        dst: (dst % stores as u64) as u32 + 1,
                        service: 0,
                    },
                ));
            }
            for (k, (at_slot, shard)) in ticks.iter().enumerate() {
                let shard = (*shard as usize) % (stores + 1);
                script.push((shard, at_slot * slot, TEv::Tick(1_000 + k as u64)));
            }
            assert_matches_oracle(stores, &script);
        }
    }

    #[test]
    fn deliveries_order_by_src_then_seq_and_before_same_time_locals() {
        // Two stores ack at the same instant; the hub also has a local
        // tick at exactly that time. Canonical order: delivery from shard
        // 1, delivery from shard 2, then the local tick.
        #[derive(Default)]
        struct Probe {
            order: Vec<(u8, u64)>,
        }
        #[derive(Clone, Debug)]
        enum PEv {
            Fire { id: u64 },
            Note { id: u64 },
        }
        impl World for Probe {
            type Event = PEv;
            fn handle(&mut self, ev: PEv, sched: &mut Scheduler<PEv>) {
                match ev {
                    PEv::Fire { id } => sched.send(0, LOOKAHEAD, PEv::Note { id }),
                    PEv::Note { id } => self.order.push((0, id)),
                }
            }
        }
        impl ShardWorld for Probe {}
        let mut sim = ShardedSim::new(
            vec![Probe::default(), Probe::default(), Probe::default()],
            LOOKAHEAD,
        )
        .with_threads(2);
        // Both fires happen at t=10 → both notes arrive at t=1010. Shard 2
        // fires *first* in wall order, but src order must win.
        sim.schedule_at(2, Time::from_ps(10), PEv::Fire { id: 20 });
        sim.schedule_at(1, Time::from_ps(10), PEv::Fire { id: 10 });
        // A local hub event at the exact arrival instant: sorts after.
        sim.schedule_at(0, Time::from_ps(1_010), PEv::Note { id: 99 });
        sim.run();
        let worlds = sim.into_worlds();
        assert_eq!(
            worlds[0].order,
            vec![(0, 10), (0, 20), (0, 99)],
            "mailbox merge order must be (time, src shard, seq), before locals"
        );
    }

    /// The star-topology pair matrix for the toy hub/store model: hub ↔
    /// store edges at the flat lookahead, store ↔ store only via the hub.
    fn star_matrix(stores: usize) -> Vec<Vec<Time>> {
        let n = stores + 1;
        let mut m = vec![vec![Time::MAX; n]; n];
        for j in 1..n {
            m[0][j] = LOOKAHEAD;
            m[j][0] = LOOKAHEAD;
        }
        m
    }

    /// The single-thread inline sweep and the scoped-thread machinery
    /// driven with one worker must produce byte-identical results: same
    /// logs, completions, executed counts, stats, and epoch sequence.
    #[test]
    fn inline_and_scoped_paths_are_byte_identical() {
        let script = fixed_script(STORES);
        let run = |scoped: bool| {
            let mut sim =
                ShardedSim::new(build_worlds(STORES), LOOKAHEAD).with_threads(1);
            for (shard, at, ev) in &script {
                sim.schedule_at(*shard, Time::from_ps(*at), ev.clone());
            }
            if scoped {
                sim.run_scoped(1);
            } else {
                sim.run(); // threads = 1: takes the inline path
            }
            let stats = sim.stats();
            let epochs = sim.epoch_log.clone();
            let worlds = sim.into_worlds();
            (worlds, stats, epochs)
        };
        let (w_inline, stats_inline, epochs_inline) = run(false);
        let (w_scoped, stats_scoped, epochs_scoped) = run(true);
        assert_eq!(stats_inline, stats_scoped, "stats drifted inline vs scoped");
        assert_eq!(epochs_inline, epochs_scoped, "epochs drifted inline vs scoped");
        for (i, (a, b)) in w_inline.iter().zip(&w_scoped).enumerate() {
            assert_eq!(a.log, b.log, "shard {i} log drifted inline vs scoped");
            assert_eq!(
                a.completions, b.completions,
                "shard {i} completions drifted inline vs scoped"
            );
        }
    }

    /// Pair-lookahead windows must leave the executed schedule untouched
    /// — same oracle match as flat mode, at every thread count — while
    /// strictly reducing synchronization rounds on the hub/store script
    /// (stores gain slack from each other's 2-hop closure entries).
    #[test]
    fn pair_lookahead_matches_oracle_with_fewer_rounds() {
        let script = fixed_script(STORES);
        let (ref_worlds, ref_counts) = run_reference(STORES, &script);
        let (_, flat_stats, _, _) = run_sharded(STORES, &script, 1);
        let mut first: Option<(EngineStats, Vec<u64>)> = None;
        for threads in [1usize, 2, 4] {
            let mut sim = ShardedSim::new(build_worlds(STORES), LOOKAHEAD)
                .with_pair_lookahead(star_matrix(STORES))
                .with_threads(threads);
            for (shard, at, ev) in &script {
                sim.schedule_at(*shard, Time::from_ps(*at), ev.clone());
            }
            sim.run();
            let stats = sim.stats();
            let counts: Vec<u64> = (0..STORES + 1)
                .map(|i| get_mut(&mut sim.cells[i]).executed)
                .collect();
            let epochs = sim.epoch_log.clone();
            let worlds = sim.into_worlds();
            assert_eq!(counts, ref_counts, "threads={threads}: counts drifted");
            for (i, (w, r)) in worlds.iter().zip(&ref_worlds).enumerate() {
                assert_eq!(w.log, r.log, "threads={threads}: shard {i} log drifted");
                assert_eq!(
                    w.completions, r.completions,
                    "threads={threads}: shard {i} completions drifted"
                );
            }
            assert_eq!(
                stats.events, flat_stats.events,
                "threads={threads}: payload events must not change"
            );
            assert_eq!(
                stats.messages, flat_stats.messages,
                "threads={threads}: message count must not change"
            );
            assert!(
                stats.rounds < flat_stats.rounds,
                "threads={threads}: matrix mode should need fewer rounds \
                 ({} vs flat {})",
                stats.rounds,
                flat_stats.rounds
            );
            match &first {
                None => first = Some((stats, epochs)),
                Some((s1, e1)) => {
                    assert_eq!(&stats, s1, "threads={threads}: stats drifted");
                    assert_eq!(&epochs, e1, "threads={threads}: epochs drifted");
                }
            }
        }
    }

    // Pair-lookahead mode against the oracle on random topologies and
    // scripts — the matrix analogue of the flat-mode property above.
    testkit::prop! {
        cases = 16;

        fn pair_lookahead_random_scripts_match_reference_oracle(
            stores in testkit::gen::u64s(1..=5),
            issues in testkit::gen::vecs(
                (testkit::gen::u64s(0..40), testkit::gen::u64s(0..6)),
                1..=40,
            ),
        ) {
            let stores = stores as usize;
            let slot = LOOKAHEAD.as_ps() / 4;
            let mut script: Script = Vec::new();
            for (id, (at_slot, dst)) in issues.iter().enumerate() {
                script.push((
                    0,
                    10 + at_slot * slot,
                    TEv::Issue {
                        id: id as u64,
                        dst: (dst % stores as u64) as u32 + 1,
                        service: 0,
                    },
                ));
            }
            let (ref_worlds, ref_counts) = run_reference(stores, &script);
            for threads in [1usize, 3] {
                let mut sim = ShardedSim::new(build_worlds(stores), LOOKAHEAD)
                    .with_pair_lookahead(star_matrix(stores))
                    .with_threads(threads);
                for (shard, at, ev) in &script {
                    sim.schedule_at(*shard, Time::from_ps(*at), ev.clone());
                }
                sim.run();
                let counts: Vec<u64> = (0..stores + 1)
                    .map(|i| get_mut(&mut sim.cells[i]).executed)
                    .collect();
                let worlds = sim.into_worlds();
                assert_eq!(counts, ref_counts, "threads={threads}: counts drifted");
                for (i, (w, r)) in worlds.iter().zip(&ref_worlds).enumerate() {
                    assert_eq!(w.log, r.log, "threads={threads}: shard {i} drifted");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "pair-lookahead")]
    fn defer_global_under_pair_lookahead_panics() {
        #[derive(Clone, Debug)]
        struct G;
        struct GWorld;
        impl World for GWorld {
            type Event = G;
            fn handle(&mut self, _: G, sched: &mut Scheduler<G>) {
                sched.defer_global(G);
            }
        }
        impl ShardWorld for GWorld {}
        let mut m = vec![vec![Time::MAX; 2]; 2];
        m[0][1] = LOOKAHEAD;
        m[1][0] = LOOKAHEAD;
        let mut sim =
            ShardedSim::new(vec![GWorld, GWorld], LOOKAHEAD).with_pair_lookahead(m);
        sim.schedule_at(0, Time::from_ps(5), G);
        sim.run();
    }

    #[test]
    fn lookahead_accessor_round_trips() {
        #[derive(Clone, Debug)]
        struct Noop;
        struct NoopWorld;
        impl World for NoopWorld {
            type Event = Noop;
            fn handle(&mut self, _: Noop, _: &mut Scheduler<Noop>) {}
        }
        impl ShardWorld for NoopWorld {}
        let sim = ShardedSim::new(vec![NoopWorld, NoopWorld], LOOKAHEAD);
        assert_eq!(sim.lookahead(), LOOKAHEAD);
    }

    #[test]
    #[should_panic(expected = "below lookahead")]
    fn short_cross_shard_delay_panics() {
        #[derive(Clone, Debug)]
        struct Bad;
        struct BadWorld;
        impl World for BadWorld {
            type Event = Bad;
            fn handle(&mut self, _: Bad, sched: &mut Scheduler<Bad>) {
                sched.send(1, Time::from_ps(1), Bad);
            }
        }
        impl ShardWorld for BadWorld {}
        let mut sim = ShardedSim::new(vec![BadWorld, BadWorld], LOOKAHEAD);
        sim.schedule_at(0, Time::from_ps(5), Bad);
        sim.run();
    }

    #[test]
    #[should_panic(expected = "outside the sharded engine")]
    fn send_under_plain_simulation_panics() {
        struct SendWorld;
        impl World for SendWorld {
            type Event = u32;
            fn handle(&mut self, _: u32, sched: &mut Scheduler<u32>) {
                sched.send(1, LOOKAHEAD, 0);
            }
        }
        let mut sim = crate::Simulation::new(SendWorld);
        sim.schedule_at(Time::from_ps(1), 0);
        sim.run();
    }

    #[test]
    fn stop_ends_the_run_after_the_current_window() {
        struct Stopper {
            seen: Vec<u64>,
        }
        #[derive(Clone, Debug)]
        enum SEv {
            Stop,
            Later(u64),
        }
        impl World for Stopper {
            type Event = SEv;
            fn handle(&mut self, ev: SEv, sched: &mut Scheduler<SEv>) {
                match ev {
                    SEv::Stop => sched.stop(),
                    SEv::Later(i) => self.seen.push(i),
                }
            }
        }
        impl ShardWorld for Stopper {}
        let mut sim =
            ShardedSim::new(vec![Stopper { seen: vec![] }], Time::from_ps(100));
        sim.schedule_at(0, Time::from_ps(10), SEv::Stop);
        // Far beyond the stop window: must never run.
        sim.schedule_at(0, Time::from_ps(100_000), SEv::Later(1));
        sim.run();
        assert!(sim.into_worlds()[0].seen.is_empty());
    }

    #[test]
    fn global_ops_run_at_the_horizon_with_all_shards() {
        #[derive(Clone, Debug)]
        enum GEv {
            Defer,
            Bump,
        }
        #[derive(Default)]
        struct GNode {
            bumped: u64,
            global_at: Vec<u64>,
        }
        impl World for GNode {
            type Event = GEv;
            fn handle(&mut self, ev: GEv, sched: &mut Scheduler<GEv>) {
                match ev {
                    GEv::Defer => sched.defer_global(GEv::Bump),
                    GEv::Bump => {}
                }
            }
        }
        impl ShardWorld for GNode {
            fn handle_global(shards: &mut [&mut Self], at: Time, ev: GEv) {
                if matches!(ev, GEv::Bump) {
                    for s in shards.iter_mut() {
                        s.bumped += 1;
                        s.global_at.push(at.as_ps());
                    }
                }
            }
        }
        let mut sim = ShardedSim::new(
            vec![GNode::default(), GNode::default()],
            Time::from_ps(1_000),
        )
        .with_threads(2);
        sim.schedule_at(0, Time::from_ps(42), GEv::Defer);
        sim.run();
        for w in sim.into_worlds() {
            assert_eq!(w.bumped, 1);
            // Horizon of the window containing t=42: 42 + 1000.
            assert_eq!(w.global_at, vec![1_042]);
        }
    }
}
