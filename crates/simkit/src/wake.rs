//! Wakeup coalescing for fluid-resource drivers.
//!
//! The driving protocol (see [`crate::fluid`]) re-arms a wakeup after every
//! batch that touches a resource. A naive driver pushes a heap entry each
//! time; under churn almost all of those entries are stale by the time they
//! surface (their epoch no longer matches), so the scheduler heap fills
//! with no-ops and every real event pays `O(log heap)` for them.
//!
//! [`WakeCoalescer`] keeps **at most one armed heap entry per resource**
//! (the *sentinel*) plus at most one *deferred* wake that exists only as a
//! reserved FIFO sequence number. The protocol is constructed so the
//! resulting simulation is **indistinguishable** from the naive driver —
//! same deliveries, same ordering, same tie-breaks:
//!
//! - Every arm request consumes exactly one scheduler sequence number,
//!   either by pushing a real entry ([`Scheduler::schedule_at`]) or by
//!   reserving one ([`Scheduler::reserve_seq`]) for a deferred wake. The
//!   global sequence counter therefore advances exactly as it would under
//!   the naive driver, so FIFO tie-breaks between *other* events are
//!   untouched.
//! - A wake may be deferred only while it would fire at or after the
//!   sentinel (`want >= armed.at`): the sentinel always surfaces first and
//!   decides the deferred wake's fate before the scheduler could need it.
//! - A deferred wake is *dropped* only when its epoch is already behind
//!   the resource's — epochs are monotone, so its delivery would have been
//!   a guaranteed no-op. Otherwise it is materialized into the heap under
//!   its reserved sequence number ([`Scheduler::schedule_at_seq`]), landing
//!   in exactly the position the naive driver's push would have given it.
//!
//! The heap thus holds the naive driver's entries minus provably-stale
//! ones; everything that survives is delivered at the same instant with
//! the same tie-break rank.
//!
//! # Driver usage
//!
//! ```text
//! // When re-arming after a batch (per touched resource):
//! let (a, b) = coal.arm(fluid.next_wake().map(|t| t.max(now)), fluid.epoch(),
//!                       || sched.reserve_seq());
//! for e in [a, b].into_iter().flatten() {
//!     match e.seq {
//!         Some(seq) => sched.schedule_at_seq(e.at, seq, Ev::Wake(key, e.epoch, e.serial)),
//!         None => sched.schedule_at(e.at, Ev::Wake(key, e.epoch, e.serial)),
//!     }
//! }
//!
//! // On delivery of Ev::Wake(key, epoch, serial), BEFORE the epoch check:
//! if let Some(e) = coal.on_delivery(serial, fluid.epoch()) {
//!     sched.schedule_at_seq(e.at, e.seq.unwrap(), Ev::Wake(key, e.epoch, e.serial));
//! }
//! if epoch != fluid.epoch() { return; } // stale, same as the naive driver
//! ```
//!
//! [`Scheduler::schedule_at`]: crate::Scheduler::schedule_at
//! [`Scheduler::reserve_seq`]: crate::Scheduler::reserve_seq
//! [`Scheduler::schedule_at_seq`]: crate::Scheduler::schedule_at_seq

use crate::time::Time;

/// An instruction to push one wake event into the scheduler.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct WakeEmit {
    /// Delivery instant.
    pub at: Time,
    /// The fluid epoch the wake was armed under (checked on delivery).
    pub epoch: u64,
    /// The coalescer serial to embed in the event (identifies the
    /// sentinel on delivery).
    pub serial: u64,
    /// `Some(seq)`: push via `schedule_at_seq` under this pre-reserved
    /// FIFO rank. `None`: push via plain `schedule_at`.
    pub seq: Option<u64>,
}

/// Per-resource wakeup coalescing state. See the module documentation for
/// the protocol and its equivalence argument.
#[derive(Debug, Default)]
pub struct WakeCoalescer {
    /// The one heap entry this resource tracks: `(at, serial)`.
    armed: Option<(Time, u64)>,
    /// The one not-yet-pushed wake: `(at, epoch, reserved seq)`.
    /// Invariant: `deferred` exists only while `armed` does, with
    /// `armed.at <= deferred.at`.
    deferred: Option<(Time, u64, u64)>,
    next_serial: u64,
}

impl WakeCoalescer {
    /// A coalescer with nothing armed.
    pub fn new() -> Self {
        Self::default()
    }

    fn fresh_serial(&mut self) -> u64 {
        let s = self.next_serial;
        self.next_serial += 1;
        s
    }

    /// Decides the fate of the deferred wake: materialize it if it could
    /// still be current at delivery, drop it if it is provably stale.
    fn dispose_deferred(&mut self, current_epoch: u64) -> Option<WakeEmit> {
        let (at, epoch, seq) = self.deferred.take()?;
        if epoch == current_epoch {
            Some(WakeEmit {
                at,
                epoch,
                serial: self.fresh_serial(),
                seq: Some(seq),
            })
        } else {
            // Epochs are monotone: at delivery this wake's epoch check
            // would fail just as it would have under the naive driver.
            // The reserved sequence number stays consumed, so global FIFO
            // numbering is unchanged.
            None
        }
    }

    /// Arms a wakeup at `want` under `epoch` (the resource's current
    /// epoch). `reserve` must reserve one scheduler sequence number when
    /// called; it is called at most once, precisely when the naive driver
    /// would have pushed an entry that this coalescer defers.
    ///
    /// Returns up to two [`WakeEmit`]s the caller must execute in order.
    pub fn arm(
        &mut self,
        want: Option<Time>,
        epoch: u64,
        reserve: impl FnOnce() -> u64,
    ) -> (Option<WakeEmit>, Option<WakeEmit>) {
        match want {
            // Nothing to arm (the naive driver pushed nothing either);
            // the deferred wake, if any, must still be resolved.
            None => (self.dispose_deferred(epoch), None),
            Some(at) => match self.armed {
                None => {
                    debug_assert!(self.deferred.is_none(), "deferred without a sentinel");
                    let serial = self.fresh_serial();
                    self.armed = Some((at, serial));
                    (
                        Some(WakeEmit {
                            at,
                            epoch,
                            serial,
                            seq: None,
                        }),
                        None,
                    )
                }
                Some((armed_at, _)) if at >= armed_at => {
                    // The sentinel surfaces first and will decide this
                    // wake's fate; hold it as a reserved seq only.
                    let first = self.dispose_deferred(epoch);
                    let seq = reserve();
                    self.deferred = Some((at, epoch, seq));
                    (first, None)
                }
                Some(_) => {
                    // Earlier than the sentinel: it must be pushed for
                    // real. The old sentinel stays in the heap as an
                    // orphan and self-checks its epoch on delivery.
                    let first = self.dispose_deferred(epoch);
                    let serial = self.fresh_serial();
                    self.armed = Some((at, serial));
                    (
                        first,
                        Some(WakeEmit {
                            at,
                            epoch,
                            serial,
                            seq: None,
                        }),
                    )
                }
            },
        }
    }

    /// Must be called on every wake delivery, *before* the driver's epoch
    /// check, with the resource's current epoch. If the delivered event is
    /// the sentinel, the deferred wake (if any) is resolved: the returned
    /// emit (if some) must be pushed via `schedule_at_seq` and becomes the
    /// new sentinel.
    pub fn on_delivery(&mut self, serial: u64, current_epoch: u64) -> Option<WakeEmit> {
        match self.armed {
            Some((_, s)) if s == serial => {
                self.armed = None;
                let emit = self.dispose_deferred(current_epoch);
                if let Some(e) = &emit {
                    // The materialized wake is now this resource's
                    // earliest outstanding entry: the new sentinel.
                    self.armed = Some((e.at, e.serial));
                }
                emit
            }
            // An orphaned entry from before a sentinel replacement; the
            // driver's epoch check handles it exactly like the naive
            // driver would.
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ps: u64) -> Time {
        Time::from_ps(ps)
    }

    #[test]
    fn fresh_arm_pushes_a_sentinel() {
        let mut c = WakeCoalescer::new();
        let (a, b) = c.arm(Some(t(100)), 1, || unreachable!("nothing to defer"));
        let e = a.expect("pushes");
        assert_eq!(b, None);
        assert_eq!((e.at, e.epoch, e.seq), (t(100), 1, None));
    }

    #[test]
    fn later_wake_is_deferred_with_one_reserved_seq() {
        let mut c = WakeCoalescer::new();
        let _ = c.arm(Some(t(100)), 1, || unreachable!());
        let mut reserved = 0;
        let (a, b) = c.arm(Some(t(200)), 2, || {
            reserved += 1;
            7
        });
        assert_eq!((a, b), (None, None), "nothing enters the heap");
        assert_eq!(reserved, 1, "exactly one seq consumed, like a real push");
    }

    #[test]
    fn sentinel_delivery_materializes_current_deferred_under_its_seq() {
        let mut c = WakeCoalescer::new();
        let s0 = c.arm(Some(t(100)), 1, || unreachable!()).0.unwrap();
        let _ = c.arm(Some(t(200)), 2, || 7);
        // Epoch still 2 at delivery: the deferred wake may be live.
        let e = c.on_delivery(s0.serial, 2).expect("materialized");
        assert_eq!((e.at, e.epoch, e.seq), (t(200), 2, Some(7)));
        // It became the new sentinel: its own delivery resolves it.
        assert_eq!(c.on_delivery(e.serial, 2), None);
        // And the slot is free for a fresh push again.
        let (a, _) = c.arm(Some(t(300)), 3, || unreachable!());
        assert!(a.is_some());
    }

    #[test]
    fn sentinel_delivery_drops_stale_deferred() {
        let mut c = WakeCoalescer::new();
        let s0 = c.arm(Some(t(100)), 1, || unreachable!()).0.unwrap();
        let _ = c.arm(Some(t(200)), 2, || 7);
        // Epoch moved past the deferred wake's: provably a no-op.
        assert_eq!(c.on_delivery(s0.serial, 3), None);
        // Nothing is armed anymore.
        let (a, _) = c.arm(Some(t(300)), 3, || unreachable!());
        assert!(a.is_some(), "slot was cleared");
    }

    #[test]
    fn replacing_deferred_resolves_the_old_one() {
        let mut c = WakeCoalescer::new();
        let _ = c.arm(Some(t(100)), 1, || unreachable!());
        let _ = c.arm(Some(t(200)), 2, || 7);
        // Same epoch: the old deferred wake must materialize.
        let (a, b) = c.arm(Some(t(250)), 2, || 9);
        let e = a.expect("old deferred materialized");
        assert_eq!((e.at, e.seq), (t(200), Some(7)));
        assert_eq!(b, None);
        // Bumped epoch: the replaced deferred wake is dropped instead.
        let (a, b) = c.arm(Some(t(300)), 3, || 11);
        assert_eq!((a, b), (None, None));
    }

    #[test]
    fn earlier_wake_pushes_new_sentinel_and_orphans_old() {
        let mut c = WakeCoalescer::new();
        let s0 = c.arm(Some(t(100)), 1, || unreachable!()).0.unwrap();
        let (a, b) = c.arm(Some(t(50)), 2, || unreachable!());
        assert_eq!(a, None, "no deferred to resolve");
        let e = b.expect("new sentinel pushed");
        assert_eq!((e.at, e.seq), (t(50), None));
        assert_ne!(e.serial, s0.serial);
        // The orphaned old sentinel is ignored on delivery.
        assert_eq!(c.on_delivery(s0.serial, 2), None);
        // The new sentinel is recognized.
        assert_eq!(c.on_delivery(e.serial, 2), None);
        let (a, _) = c.arm(Some(t(300)), 3, || unreachable!());
        assert!(a.is_some(), "slot was cleared by the real sentinel");
    }

    #[test]
    fn arm_none_resolves_deferred_without_consuming_seqs() {
        let mut c = WakeCoalescer::new();
        let _ = c.arm(Some(t(100)), 1, || unreachable!());
        let _ = c.arm(Some(t(200)), 2, || 7);
        // Same epoch: materialize on the way out.
        let (a, b) = c.arm(None, 2, || unreachable!("None never reserves"));
        let e = a.expect("materialized");
        assert_eq!(e.seq, Some(7));
        assert_eq!(b, None);
        // A stale deferred wake is silently dropped.
        let _ = c.arm(Some(t(400)), 5, || 9);
        assert_eq!(c.arm(None, 6, || unreachable!()), (None, None));
    }
}
