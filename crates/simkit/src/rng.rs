//! A small deterministic PRNG for simulation use.
//!
//! `simkit` stays dependency-free, so it ships its own
//! [SplitMix64](https://prng.di.unimi.it/splitmix64.c)-based generator.
//! SplitMix64 passes BigCrush, is seedable from a single `u64`, and every
//! stream is exactly reproducible — which is what a simulator needs (the
//! workload crates use the `rand` crate for richer distributions).
//!
//! # Examples
//!
//! ```
//! use simkit::Rng;
//!
//! let mut a = Rng::new(42);
//! let mut b = Rng::new(42);
//! assert_eq!(a.next_u64(), b.next_u64());
//! ```

/// A seedable SplitMix64 pseudo-random generator.
#[derive(Clone, Debug)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a generator from a seed. Equal seeds yield equal streams.
    pub fn new(seed: u64) -> Self {
        Rng { state: seed }
    }

    /// Derives an independent child generator (for per-node streams).
    pub fn fork(&mut self) -> Rng {
        Rng::new(self.next_u64() ^ 0x9e37_79b9_7f4a_7c15)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn gen_range(&mut self, n: u64) -> u64 {
        assert!(n > 0, "gen_range(0)");
        // Lemire's multiply-shift rejection method for unbiased range.
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(n as u128);
            let lo = m as u64;
            if lo >= n || lo >= (n.wrapping_neg() % n) {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with probability `p`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Exponentially distributed value with the given mean (for Poisson
    /// inter-arrival times in open-loop load generators).
    pub fn gen_exp(&mut self, mean: f64) -> f64 {
        // Inverse CDF; guard against ln(0).
        let u = self.gen_f64().max(f64::MIN_POSITIVE);
        -mean * u.ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism() {
        let mut a = Rng::new(7);
        let mut b = Rng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn range_bounds_respected() {
        let mut r = Rng::new(99);
        for _ in 0..10_000 {
            let v = r.gen_range(13);
            assert!(v < 13);
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut r = Rng::new(3);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[r.gen_range(8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng::new(5);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v = r.gen_f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean={mean}");
    }

    #[test]
    fn exp_mean_close() {
        let mut r = Rng::new(11);
        let mean_target = 250.0;
        let mut sum = 0.0;
        for _ in 0..50_000 {
            let v = r.gen_exp(mean_target);
            assert!(v >= 0.0);
            sum += v;
        }
        let mean = sum / 50_000.0;
        assert!((mean - mean_target).abs() / mean_target < 0.05, "mean={mean}");
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut parent = Rng::new(42);
        let mut c1 = parent.fork();
        let mut c2 = parent.fork();
        assert_ne!(c1.next_u64(), c2.next_u64());
    }
}
