//! The discrete-event engine: an event queue plus an executor.
//!
//! The engine is deliberately minimal. A simulation is a [`World`]: a single
//! state machine that owns every model object (nodes, resources, transports)
//! and receives its own event type back from the queue. Model objects are
//! written as *passive* state machines — they return "what to do next" data
//! instead of scheduling directly — and the world maps those onto
//! [`Scheduler::schedule_in`] calls. This keeps models unit-testable without
//! an engine and sidesteps shared-mutability patterns.
//!
//! Determinism: events at the same timestamp fire in FIFO insertion order
//! (a monotonically increasing sequence number breaks ties), so a seeded
//! simulation is exactly reproducible.
//!
//! # Examples
//!
//! ```
//! use simkit::{Scheduler, Simulation, Time, World};
//!
//! struct Counter {
//!     fired: Vec<u32>,
//! }
//!
//! impl World for Counter {
//!     type Event = u32;
//!     fn handle(&mut self, ev: u32, sched: &mut Scheduler<u32>) {
//!         self.fired.push(ev);
//!         if ev < 3 {
//!             sched.schedule_in(Time::from_ns(10.0), ev + 1);
//!         }
//!     }
//! }
//!
//! let mut sim = Simulation::new(Counter { fired: vec![] });
//! sim.schedule_at(Time::ZERO, 0);
//! sim.run();
//! assert_eq!(sim.world().fired, vec![0, 1, 2, 3]);
//! assert_eq!(sim.now(), Time::from_ns(30.0));
//! ```

use crate::time::Time;
use crate::wheel::TimerWheel;

/// A simulation world: owns all model state and handles its own events.
pub trait World {
    /// The event type circulated through the queue.
    type Event;

    /// Handles one event at the scheduler's current time.
    fn handle(&mut self, ev: Self::Event, sched: &mut Scheduler<Self::Event>);
}

/// Tie-break class for same-timestamp events: cross-shard deliveries sort
/// before locally scheduled events, making the merged order independent of
/// the synchronization-window boundaries (see `simkit::shard`). Purely
/// local simulations only ever use `CLASS_LOCAL`, so their FIFO semantics
/// are untouched.
pub(crate) const CLASS_DELIVERED: u8 = 0;
pub(crate) const CLASS_LOCAL: u8 = 1;

#[derive(Debug)]
pub(crate) struct Scheduled<E> {
    pub(crate) at: Time,
    /// `CLASS_DELIVERED` for cross-shard mailbox deliveries, `CLASS_LOCAL`
    /// for events scheduled by this shard.
    pub(crate) class: u8,
    /// Sending shard id (deliveries) or 0 (local events).
    pub(crate) src: u32,
    /// Local FIFO sequence (local events) or the sender's per-message
    /// sequence (deliveries). `pub(crate)` so the shard engine can stamp
    /// it into shardsan violation reports.
    pub(crate) seq: u64,
    pub(crate) event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        (self.at, self.class, self.src, self.seq)
            == (other.at, other.class, other.src, other.seq)
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.class, self.src, self.seq).cmp(&(
            other.at,
            other.class,
            other.src,
            other.seq,
        ))
    }
}

/// A cross-shard message parked in a sender's per-destination outbox until
/// the engine's synchronization barrier merges it into the destination
/// queue. The destination is the outbox's index, not a field, so a
/// window's traffic for one `(sender, receiver)` pair is a contiguous
/// growable buffer the engine swaps out wholesale each epoch.
#[derive(Debug)]
pub(crate) struct Outgoing<E> {
    pub(crate) at: Time,
    pub(crate) seq: u64,
    pub(crate) event: E,
}

/// The scheduling interface handed to [`World::handle`].
///
/// Tracks the current simulated time and accepts future events.
#[derive(Debug)]
pub struct Scheduler<E> {
    now: Time,
    seq: u64,
    queue: TimerWheel<E>,
    stopped: bool,
    /// This shard's id and conservative lookahead, set by the sharded
    /// engine. `None` in plain sequential simulations, where [`Scheduler::send`]
    /// and [`Scheduler::defer_global`] are misuse.
    remote: Option<(u32, Time)>,
    /// Cross-shard messages sent during the current window, one growable
    /// buffer per destination shard (index = destination id). The sharded
    /// engine swaps these against empty same-capacity buffers at each
    /// barrier, so steady-state epochs allocate nothing here.
    outboxes: Vec<Vec<Outgoing<E>>>,
    /// Per-sender message sequence: the deterministic mailbox tie-break.
    msg_seq: u64,
    /// Barrier operations deferred to the end of the current window.
    globals: Vec<E>,
}

impl<E> Scheduler<E> {
    pub(crate) fn new() -> Self {
        Scheduler {
            now: Time::ZERO,
            seq: 0,
            queue: TimerWheel::new(),
            stopped: false,
            remote: None,
            outboxes: Vec::new(),
            msg_seq: 0,
            globals: Vec::new(),
        }
    }

    /// The current simulated time.
    #[inline]
    pub fn now(&self) -> Time {
        self.now
    }

    /// Schedules `event` at the absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past (before [`Scheduler::now`]).
    pub fn schedule_at(&mut self, at: Time, event: E) {
        assert!(
            at >= self.now,
            "cannot schedule into the past: at={at:?} now={:?}",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Scheduled {
            at,
            class: CLASS_LOCAL,
            src: 0,
            seq,
            event,
        });
    }

    /// Schedules `event` after a relative delay from now.
    pub fn schedule_in(&mut self, delay: Time, event: E) {
        self.schedule_at(self.now.saturating_add(delay), event);
    }

    /// Sends `event` to shard `dst`, arriving `delay` after now.
    ///
    /// Only meaningful under the sharded engine (`simkit::shard`): the
    /// message is parked in this shard's outbox and merged into `dst`'s
    /// queue at the next synchronization barrier. Deliveries are ordered by
    /// `(arrival time, sending shard, send sequence)` and sort *before*
    /// same-timestamp local events, so the merged execution is independent
    /// of where the engine's window boundaries fall.
    ///
    /// # Panics
    ///
    /// Panics in a plain sequential [`Simulation`] (no shard engine to
    /// drain the outbox), when `dst` is this shard itself, or when `delay`
    /// is below the engine's conservative lookahead — the lookahead bound
    /// is exactly what makes windowed parallel execution exact, so a too-
    /// short delay is a model bug, not a tolerable approximation.
    pub fn send(&mut self, dst: u32, delay: Time, event: E) {
        let Some((me, lookahead)) = self.remote else {
            panic!("Scheduler::send outside the sharded engine (see simkit::shard)");
        };
        assert!(dst != me, "shard {me} sending to itself: use schedule_in");
        assert!(
            delay >= lookahead,
            "cross-shard delay {delay:?} below lookahead {lookahead:?}"
        );
        assert!(
            (dst as usize) < self.outboxes.len(),
            "message to unknown shard {dst}"
        );
        let seq = self.msg_seq;
        self.msg_seq += 1;
        self.outboxes[dst as usize].push(Outgoing {
            at: self.now.saturating_add(delay),
            seq,
            event,
        });
    }

    /// Defers `event` as a *barrier operation*: at the end of the current
    /// synchronization window the sharded engine hands it to
    /// `ShardWorld::handle_global` with mutable access to every shard, in
    /// deterministic (shard id, defer order) order. For rare cross-shard
    /// state operations (scrub, snapshot) that cannot be expressed as
    /// messages.
    ///
    /// # Panics
    ///
    /// Panics in a plain sequential [`Simulation`].
    pub fn defer_global(&mut self, event: E) {
        assert!(
            self.remote.is_some(),
            "Scheduler::defer_global outside the sharded engine"
        );
        self.globals.push(event);
    }

    /// Whether this scheduler runs under the sharded engine (true) or a
    /// plain sequential [`Simulation`] (false). Worlds that support both
    /// modes use this to choose between [`Scheduler::send`] and a local
    /// [`Scheduler::schedule_in`].
    pub fn is_sharded(&self) -> bool {
        self.remote.is_some()
    }

    pub(crate) fn enable_remote(&mut self, shard: u32, lookahead: Time, shards: usize) {
        self.remote = Some((shard, lookahead));
        self.outboxes = (0..shards).map(|_| Vec::new()).collect();
    }

    /// Pushes a cross-shard delivery (class 0: before same-time locals).
    pub(crate) fn deliver(&mut self, at: Time, src: u32, seq: u64, event: E) {
        debug_assert!(at >= self.now, "delivery into the past");
        self.queue.push(Scheduled {
            at,
            class: CLASS_DELIVERED,
            src,
            seq,
            event,
        });
    }

    /// Exchanges the per-destination outboxes against `bufs` (one empty
    /// buffer per shard): the engine walks off with this window's traffic
    /// and leaves last window's drained buffers — capacity included — in
    /// their place.
    pub(crate) fn swap_outboxes(&mut self, bufs: &mut [Vec<Outgoing<E>>]) {
        debug_assert_eq!(bufs.len(), self.outboxes.len());
        for (mine, theirs) in self.outboxes.iter_mut().zip(bufs) {
            debug_assert!(theirs.is_empty());
            std::mem::swap(mine, theirs);
        }
    }

    pub(crate) fn take_globals(&mut self) -> Vec<E> {
        std::mem::take(&mut self.globals)
    }

    pub(crate) fn is_stopped(&self) -> bool {
        self.stopped
    }

    pub(crate) fn set_now(&mut self, at: Time) {
        debug_assert!(at >= self.now);
        self.now = at;
    }

    /// Reserves the next sequence number without pushing an event.
    ///
    /// Together with [`Scheduler::schedule_at_seq`] this lets a driver defer
    /// a heap push while keeping FIFO tie-breaking identical to the
    /// non-deferred schedule: the event is pushed later (or never, when it
    /// is provably a no-op) but fires in exactly the slot it would have
    /// occupied. See `simkit::wake` for the one intended user.
    pub fn reserve_seq(&mut self) -> u64 {
        let seq = self.seq;
        self.seq += 1;
        seq
    }

    /// Schedules `event` at `at` under a sequence number previously handed
    /// out by [`Scheduler::reserve_seq`].
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past or `seq` was never reserved (i.e. is
    /// not below the scheduler's internal counter).
    pub fn schedule_at_seq(&mut self, at: Time, seq: u64, event: E) {
        assert!(
            at >= self.now,
            "cannot schedule into the past: at={at:?} now={:?}",
            self.now
        );
        assert!(seq < self.seq, "sequence {seq} was never reserved");
        self.queue.push(Scheduled {
            at,
            class: CLASS_LOCAL,
            src: 0,
            seq,
            event,
        });
    }

    /// Requests that the executor stop after the current event.
    pub fn stop(&mut self) {
        self.stopped = true;
    }

    /// Number of pending events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// The timestamp of the next pending event, if any.
    pub fn next_time(&self) -> Option<Time> {
        self.queue.next_time()
    }

    pub(crate) fn pop(&mut self) -> Option<Scheduled<E>> {
        self.queue.pop()
    }

    /// Pops the next event only if it fires strictly before `horizon` —
    /// the sharded engine's inner-loop step, fused so a window pass costs
    /// one queue operation instead of a peek plus a pop.
    pub(crate) fn pop_if_before(&mut self, horizon: Time) -> Option<Scheduled<E>> {
        match self.queue.next_time() {
            Some(t) if t < horizon => self.queue.pop(),
            _ => None,
        }
    }
}

/// A discrete-event simulation: a [`World`] plus its event queue.
#[derive(Debug)]
pub struct Simulation<W: World> {
    world: W,
    sched: Scheduler<W::Event>,
    executed: u64,
}

impl<W: World> Simulation<W> {
    /// Creates a simulation at time zero with an empty queue.
    pub fn new(world: W) -> Self {
        Simulation {
            world,
            sched: Scheduler::new(),
            executed: 0,
        }
    }

    /// The current simulated time.
    pub fn now(&self) -> Time {
        self.sched.now()
    }

    /// Total number of events executed so far.
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// Shared access to the world.
    pub fn world(&self) -> &W {
        &self.world
    }

    /// Exclusive access to the world (e.g. to inject load or read metrics).
    pub fn world_mut(&mut self) -> &mut W {
        &mut self.world
    }

    /// Consumes the simulation, returning the world.
    pub fn into_world(self) -> W {
        self.world
    }

    /// Schedules an event before or between runs.
    ///
    /// # Panics
    ///
    /// Panics if `at` is before the current time.
    pub fn schedule_at(&mut self, at: Time, event: W::Event) {
        self.sched.schedule_at(at, event);
    }

    /// Schedules an event `delay` after the current time.
    pub fn schedule_in(&mut self, delay: Time, event: W::Event) {
        self.sched.schedule_in(delay, event);
    }

    /// Executes a single event. Returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        let Some(s) = self.sched.pop() else {
            return false;
        };
        debug_assert!(s.at >= self.sched.now);
        self.sched.now = s.at;
        self.executed += 1;
        self.world.handle(s.event, &mut self.sched);
        true
    }

    /// Runs until the queue is empty or [`Scheduler::stop`] is called.
    pub fn run(&mut self) {
        while !self.sched.stopped && self.step() {}
        self.sched.stopped = false;
    }

    /// Runs until the queue drains, `stop()` is called, or the next event
    /// would fire after `deadline`. Time is left at the last executed event
    /// (it does not jump to the deadline).
    pub fn run_until(&mut self, deadline: Time) {
        while !self.sched.stopped {
            match self.sched.next_time() {
                Some(t) if t <= deadline => {
                    self.step();
                }
                _ => break,
            }
        }
        self.sched.stopped = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct Recorder {
        log: Vec<(u64, &'static str)>,
        stop_at: Option<&'static str>,
    }

    impl World for Recorder {
        type Event = &'static str;
        fn handle(&mut self, ev: &'static str, sched: &mut Scheduler<&'static str>) {
            self.log.push((sched.now().as_ps(), ev));
            if self.stop_at == Some(ev) {
                sched.stop();
            }
        }
    }

    #[test]
    fn fifo_order_for_simultaneous_events() {
        let mut sim = Simulation::new(Recorder::default());
        sim.schedule_at(Time::from_ps(10), "a");
        sim.schedule_at(Time::from_ps(10), "b");
        sim.schedule_at(Time::from_ps(5), "c");
        sim.run();
        assert_eq!(
            sim.world().log,
            vec![(5, "c"), (10, "a"), (10, "b")],
            "same-time events must preserve insertion order"
        );
    }

    #[test]
    fn run_until_stops_before_deadline_exceeded() {
        let mut sim = Simulation::new(Recorder::default());
        sim.schedule_at(Time::from_ps(10), "a");
        sim.schedule_at(Time::from_ps(20), "b");
        sim.schedule_at(Time::from_ps(30), "c");
        sim.run_until(Time::from_ps(20));
        assert_eq!(sim.world().log, vec![(10, "a"), (20, "b")]);
        assert_eq!(sim.now(), Time::from_ps(20));
        sim.run();
        assert_eq!(sim.world().log.last(), Some(&(30, "c")));
    }

    #[test]
    fn stop_halts_and_resets() {
        let mut sim = Simulation::new(Recorder {
            stop_at: Some("b"),
            ..Recorder::default()
        });
        sim.schedule_at(Time::from_ps(1), "a");
        sim.schedule_at(Time::from_ps(2), "b");
        sim.schedule_at(Time::from_ps(3), "c");
        sim.run();
        assert_eq!(sim.world().log.len(), 2);
        // Stop flag resets: a second run resumes.
        sim.world_mut().stop_at = None;
        sim.run();
        assert_eq!(sim.world().log.len(), 3);
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_past_panics() {
        let mut sim = Simulation::new(Recorder::default());
        sim.schedule_at(Time::from_ps(10), "a");
        sim.run();
        sim.schedule_at(Time::from_ps(5), "late");
    }

    #[test]
    fn reserved_seq_keeps_fifo_slot() {
        // Reserve a slot, schedule a later event, then fill the reserved
        // slot: at equal timestamps the deferred event must still fire in
        // the order its reservation was made, not its push.
        let mut sim = Simulation::new(Recorder::default());
        sim.schedule_at(Time::from_ps(10), "a");
        let reserved = sim.sched.reserve_seq();
        sim.schedule_at(Time::from_ps(10), "c");
        sim.sched.schedule_at_seq(Time::from_ps(10), reserved, "b");
        sim.run();
        assert_eq!(
            sim.world().log,
            vec![(10, "a"), (10, "b"), (10, "c")],
            "a deferred push must land in its reserved FIFO slot"
        );
    }

    #[test]
    #[should_panic(expected = "never reserved")]
    fn unreserved_seq_panics() {
        let mut sim = Simulation::new(Recorder::default());
        sim.sched.schedule_at_seq(Time::from_ps(1), 99, "x");
    }

    #[test]
    fn executed_counter() {
        let mut sim = Simulation::new(Recorder::default());
        for i in 0..5 {
            sim.schedule_at(Time::from_ps(i), "x");
        }
        sim.run();
        assert_eq!(sim.executed(), 5);
    }

    testkit::prop! {
        cases = 48;

        fn scheduler_pop_order_matches_a_shadow_heap(
            raws in testkit::gen::vecs(
                (testkit::gen::u64s(0..1 << 48), testkit::gen::u64s(0..10)),
                1..=300,
            ),
        ) {
            // Drive the wheel-backed scheduler and a plain binary heap over
            // the full ordering key through the same interleaving of
            // schedule_at / reserve_seq / schedule_at_seq / deliver / pop,
            // asserting identical pop sequences. Reservations are filled
            // out of order (LIFO) and sometimes left unfilled, exactly the
            // deferred-push freedom `simkit::wake` exploits.
            use std::cmp::Reverse;
            use std::collections::BinaryHeap;
            let mut sched: Scheduler<u64> = Scheduler::new();
            sched.enable_remote(0, Time::from_ps(1), 1);
            let mut shadow: BinaryHeap<Reverse<Scheduled<u64>>> = BinaryHeap::new();
            let mut reserved: Vec<u64> = Vec::new();
            let mut msg_seq = 0u64;
            for (raw, kind) in &raws {
                let at = Time::from_ps(*raw);
                match kind {
                    0..=2 => {
                        let w = sched.pop();
                        let o = shadow.pop().map(|Reverse(s)| s);
                        let key = |s: &Scheduled<u64>| (s.at, s.class, s.src, s.seq);
                        assert_eq!(
                            w.as_ref().map(key),
                            o.as_ref().map(key),
                            "scheduler diverged from shadow heap"
                        );
                    }
                    3 => reserved.push(sched.reserve_seq()),
                    4 | 5 => {
                        if let Some(seq) = reserved.pop() {
                            sched.schedule_at_seq(at, seq, *raw);
                            shadow.push(Reverse(Scheduled {
                                at,
                                class: CLASS_LOCAL,
                                src: 0,
                                seq,
                                event: *raw,
                            }));
                        }
                    }
                    6 => {
                        msg_seq += 1;
                        sched.deliver(at, 1, msg_seq, *raw);
                        shadow.push(Reverse(Scheduled {
                            at,
                            class: CLASS_DELIVERED,
                            src: 1,
                            seq: msg_seq,
                            event: *raw,
                        }));
                    }
                    _ => {
                        let seq = sched.seq;
                        sched.schedule_at(at, *raw);
                        shadow.push(Reverse(Scheduled {
                            at,
                            class: CLASS_LOCAL,
                            src: 0,
                            seq,
                            event: *raw,
                        }));
                    }
                }
                assert_eq!(sched.pending(), shadow.len(), "length diverged");
                assert_eq!(
                    sched.next_time(),
                    shadow.peek().map(|Reverse(s)| s.at),
                    "peek diverged"
                );
            }
            while let Some(o) = shadow.pop() {
                let w = sched.pop().expect("scheduler drained early");
                assert_eq!((w.at, w.class, w.src, w.seq), {
                    let Reverse(s) = o;
                    (s.at, s.class, s.src, s.seq)
                });
            }
            assert_eq!(sched.pending(), 0);
        }
    }
}
