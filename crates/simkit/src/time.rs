//! Simulation time.
//!
//! Simulated time is measured in integer **picoseconds** since the start of
//! the simulation. A picosecond granularity keeps every event-ordering
//! decision exact (no floating-point time comparisons) while still leaving
//! room for multi-minute simulations: `u64::MAX` picoseconds is about 213
//! days.
//!
//! [`Time`] is used both for absolute instants (picoseconds since simulation
//! start) and for durations, mirroring how `std::time::Duration` is used for
//! both in many simulators. Arithmetic is saturating at the upper end so a
//! "never" sentinel ([`Time::MAX`]) survives addition.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Picoseconds per nanosecond.
pub const PS_PER_NS: u64 = 1_000;
/// Picoseconds per microsecond.
pub const PS_PER_US: u64 = 1_000_000;
/// Picoseconds per millisecond.
pub const PS_PER_MS: u64 = 1_000_000_000;
/// Picoseconds per second.
pub const PS_PER_SEC: u64 = 1_000_000_000_000;

/// `PS_PER_NS` as `f64` (exact; see `scale_constants_agree` test).
pub const PS_PER_NS_F64: f64 = 1e3;
/// `PS_PER_US` as `f64` (exact).
pub const PS_PER_US_F64: f64 = 1e6;
/// `PS_PER_MS` as `f64` (exact).
pub const PS_PER_MS_F64: f64 = 1e9;
/// `PS_PER_SEC` as `f64` (exact).
pub const PS_PER_SEC_F64: f64 = 1e12;

/// The single audited `f64 → u64` picosecond conversion point. Rust's
/// float-to-int `as` saturates: NaN maps to 0, negatives clamp to 0, and
/// anything at or above `u64::MAX` clamps to `u64::MAX` — which is exactly
/// the "never" sentinel, so overflowing times become [`Time::MAX`].
#[inline]
pub(crate) fn ps_from_f64_saturating(ps: f64) -> u64 {
    // simlint: allow(lossy-time-cast, reason = "the one audited saturating f64->ps cast; everything else funnels through here")
    ps as u64
}

/// The single audited `u64 → f64` conversion point. Above 2^53 ps (~2.5
/// hours) the conversion rounds to the nearest representable double; all
/// ordering/accumulation decisions stay on the integer side.
#[inline]
pub(crate) fn ps_to_f64(ps: u64) -> f64 {
    // simlint: allow(lossy-time-cast, reason = "the one audited ps->f64 cast; readers only, never fed back into event ordering")
    ps as f64
}

/// An instant or duration in simulated time, in integer picoseconds.
///
/// # Examples
///
/// ```
/// use simkit::Time;
///
/// let t = Time::from_us(1.5) + Time::from_ns(500.0);
/// assert_eq!(t.as_ns(), 2_000.0);
/// ```
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(u64);

impl Time {
    /// Zero time: the start of the simulation or an empty duration.
    pub const ZERO: Time = Time(0);
    /// A sentinel representing "never" / "unreachable future".
    pub const MAX: Time = Time(u64::MAX);

    /// Creates a time from raw picoseconds.
    #[inline]
    pub const fn from_ps(ps: u64) -> Self {
        Time(ps)
    }

    /// Creates a time from nanoseconds (rounded to the nearest picosecond).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `ns` is negative or not finite.
    #[inline]
    pub fn from_ns(ns: f64) -> Self {
        debug_assert!(ns.is_finite() && ns >= 0.0, "invalid time: {ns} ns");
        Time(ps_from_f64_saturating((ns * PS_PER_NS_F64).round()))
    }

    /// Creates a time from microseconds.
    #[inline]
    pub fn from_us(us: f64) -> Self {
        debug_assert!(us.is_finite() && us >= 0.0, "invalid time: {us} us");
        Time(ps_from_f64_saturating((us * PS_PER_US_F64).round()))
    }

    /// Creates a time from milliseconds.
    #[inline]
    pub fn from_ms(ms: f64) -> Self {
        debug_assert!(ms.is_finite() && ms >= 0.0, "invalid time: {ms} ms");
        Time(ps_from_f64_saturating((ms * PS_PER_MS_F64).round()))
    }

    /// Creates a time from seconds.
    #[inline]
    pub fn from_secs(s: f64) -> Self {
        debug_assert!(s.is_finite() && s >= 0.0, "invalid time: {s} s");
        Time(ps_from_f64_saturating((s * PS_PER_SEC_F64).round()))
    }

    /// Checked nanosecond conversion: `None` for NaN, infinite, or negative
    /// inputs, and for values that would overflow into the [`Time::MAX`]
    /// "never" sentinel. The release-mode-silent failure modes of
    /// [`Time::from_ns`] all surface here.
    #[inline]
    pub fn from_ns_checked(ns: f64) -> Option<Self> {
        Self::checked_scale(ns, PS_PER_NS_F64)
    }

    /// Checked microsecond conversion; see [`Time::from_ns_checked`].
    #[inline]
    pub fn from_us_checked(us: f64) -> Option<Self> {
        Self::checked_scale(us, PS_PER_US_F64)
    }

    /// Checked millisecond conversion; see [`Time::from_ns_checked`].
    #[inline]
    pub fn from_ms_checked(ms: f64) -> Option<Self> {
        Self::checked_scale(ms, PS_PER_MS_F64)
    }

    /// Checked second conversion; see [`Time::from_ns_checked`].
    #[inline]
    pub fn from_secs_checked(s: f64) -> Option<Self> {
        Self::checked_scale(s, PS_PER_SEC_F64)
    }

    #[inline]
    fn checked_scale(value: f64, scale: f64) -> Option<Self> {
        if !value.is_finite() || value < 0.0 {
            return None;
        }
        let ps = (value * scale).round();
        if ps >= ps_to_f64(u64::MAX) {
            return None;
        }
        Some(Time(ps_from_f64_saturating(ps)))
    }

    /// Creates a time from seconds, rounding *up* to the next picosecond
    /// and saturating to [`Time::MAX`]. This is the wakeup-scheduling
    /// direction: a completion instant must never be scheduled before the
    /// fluid state actually reaches it.
    #[inline]
    pub fn from_secs_ceil(s: f64) -> Self {
        debug_assert!(!s.is_nan(), "invalid time: NaN s");
        Time(ps_from_f64_saturating((s * PS_PER_SEC_F64).ceil()))
    }

    /// Raw picosecond count.
    #[inline]
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// This time expressed in nanoseconds.
    #[inline]
    pub fn as_ns(self) -> f64 {
        ps_to_f64(self.0) / PS_PER_NS_F64
    }

    /// This time expressed in microseconds.
    #[inline]
    pub fn as_us(self) -> f64 {
        ps_to_f64(self.0) / PS_PER_US_F64
    }

    /// This time expressed in milliseconds.
    #[inline]
    pub fn as_ms(self) -> f64 {
        ps_to_f64(self.0) / PS_PER_MS_F64
    }

    /// This time expressed in seconds.
    #[inline]
    pub fn as_secs(self) -> f64 {
        ps_to_f64(self.0) / PS_PER_SEC_F64
    }

    /// Saturating addition; `Time::MAX` is absorbing.
    #[inline]
    pub const fn saturating_add(self, rhs: Time) -> Time {
        Time(self.0.saturating_add(rhs.0))
    }

    /// Saturating subtraction, clamping at zero.
    #[inline]
    pub const fn saturating_sub(self, rhs: Time) -> Time {
        Time(self.0.saturating_sub(rhs.0))
    }

    /// Returns the earlier of two times.
    #[inline]
    pub fn min(self, other: Time) -> Time {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Returns the later of two times.
    #[inline]
    pub fn max(self, other: Time) -> Time {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// True if this is the [`Time::MAX`] "never" sentinel.
    #[inline]
    pub const fn is_never(self) -> bool {
        self.0 == u64::MAX
    }
}

impl Add for Time {
    type Output = Time;
    #[inline]
    fn add(self, rhs: Time) -> Time {
        self.saturating_add(rhs)
    }
}

impl AddAssign for Time {
    #[inline]
    fn add_assign(&mut self, rhs: Time) {
        *self = *self + rhs;
    }
}

impl Sub for Time {
    type Output = Time;
    /// # Panics
    ///
    /// Panics in debug builds on underflow (subtracting a later time from an
    /// earlier one). Use [`Time::saturating_sub`] when clamping is intended.
    #[inline]
    fn sub(self, rhs: Time) -> Time {
        debug_assert!(self.0 >= rhs.0, "time underflow: {self:?} - {rhs:?}");
        Time(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for Time {
    #[inline]
    fn sub_assign(&mut self, rhs: Time) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for Time {
    type Output = Time;
    #[inline]
    fn mul(self, rhs: u64) -> Time {
        Time(self.0.saturating_mul(rhs))
    }
}

impl Mul<f64> for Time {
    type Output = Time;
    /// Saturating: products at or beyond the representable range clamp to
    /// [`Time::MAX`].
    #[inline]
    fn mul(self, rhs: f64) -> Time {
        debug_assert!(rhs.is_finite() && rhs >= 0.0);
        Time(ps_from_f64_saturating((ps_to_f64(self.0) * rhs).round()))
    }
}

impl Div<u64> for Time {
    type Output = Time;
    #[inline]
    fn div(self, rhs: u64) -> Time {
        Time(self.0 / rhs)
    }
}

impl Sum for Time {
    fn sum<I: Iterator<Item = Time>>(iter: I) -> Time {
        iter.fold(Time::ZERO, Add::add)
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_never() {
            return write!(f, "Time::MAX");
        }
        write!(f, "{}", self)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ps = self.0;
        if ps == u64::MAX {
            write!(f, "never")
        } else if ps >= PS_PER_SEC {
            write!(f, "{:.3}s", self.as_secs())
        } else if ps >= PS_PER_MS {
            write!(f, "{:.3}ms", self.as_ms())
        } else if ps >= PS_PER_US {
            write!(f, "{:.3}us", self.as_us())
        } else if ps >= PS_PER_NS {
            write!(f, "{:.3}ns", self.as_ns())
        } else {
            write!(f, "{}ps", ps)
        }
    }
}

/// Computes the time needed to move `bytes` at `rate_bytes_per_sec`.
///
/// Returns [`Time::MAX`] when the rate is zero or non-positive (a stalled
/// resource never finishes).
///
/// # Examples
///
/// ```
/// use simkit::{transfer_time, Time};
///
/// // 4 KiB at 12.5 GB/s (100 Gbps) takes ~327.68 ns.
/// let t = transfer_time(4096, 12.5e9);
/// assert!((t.as_ns() - 327.68).abs() < 0.01);
/// ```
#[inline]
pub fn transfer_time(bytes: u64, rate_bytes_per_sec: f64) -> Time {
    if rate_bytes_per_sec <= 0.0 {
        return Time::MAX;
    }
    let secs = ps_to_f64(bytes) / rate_bytes_per_sec;
    Time(ps_from_f64_saturating((secs * PS_PER_SEC_F64).round()))
}

/// Converts a rate expressed in gigabits per second to bytes per second.
///
/// ```
/// use simkit::gbps;
/// assert_eq!(gbps(100.0), 12.5e9);
/// ```
#[inline]
pub const fn gbps(g: f64) -> f64 {
    g * 1e9 / 8.0
}

/// Converts a rate in bytes per second into gigabits per second.
///
/// ```
/// use simkit::to_gbps;
/// assert_eq!(to_gbps(12.5e9), 100.0);
/// ```
#[inline]
pub const fn to_gbps(bytes_per_sec: f64) -> f64 {
    bytes_per_sec * 8.0 / 1e9
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_roundtrip() {
        assert_eq!(Time::from_ns(1.0).as_ps(), 1_000);
        assert_eq!(Time::from_us(1.0).as_ps(), 1_000_000);
        assert_eq!(Time::from_ms(1.0).as_ps(), 1_000_000_000);
        assert_eq!(Time::from_secs(1.0).as_ps(), 1_000_000_000_000);
        assert_eq!(Time::from_secs(2.5).as_ms(), 2_500.0);
    }

    #[test]
    fn scale_constants_agree() {
        // The f64 mirrors must be the exact float value of the integer
        // scale constants, or conversions would silently drift.
        assert_eq!(PS_PER_NS_F64, ps_to_f64(PS_PER_NS));
        assert_eq!(PS_PER_US_F64, ps_to_f64(PS_PER_US));
        assert_eq!(PS_PER_MS_F64, ps_to_f64(PS_PER_MS));
        assert_eq!(PS_PER_SEC_F64, ps_to_f64(PS_PER_SEC));
    }

    #[test]
    fn checked_constructors_reject_bad_inputs() {
        assert_eq!(Time::from_ns_checked(1.5), Some(Time::from_ps(1_500)));
        assert_eq!(Time::from_us_checked(2.0), Some(Time::from_ps(2_000_000)));
        assert_eq!(Time::from_ms_checked(0.5), Some(Time::from_ps(500_000_000)));
        assert_eq!(Time::from_secs_checked(1.0), Some(Time::from_secs(1.0)));
        assert_eq!(Time::from_ns_checked(f64::NAN), None);
        assert_eq!(Time::from_ns_checked(f64::INFINITY), None);
        assert_eq!(Time::from_ns_checked(-1.0), None);
        // Overflow into the MAX sentinel must be rejected, not clamped.
        assert_eq!(Time::from_secs_checked(1e30), None);
    }

    #[test]
    fn from_secs_ceil_never_schedules_early() {
        // A fractional picosecond rounds up, never down.
        let t = Time::from_secs_ceil(1.25e-12);
        assert_eq!(t.as_ps(), 2);
        assert_eq!(Time::from_secs_ceil(0.0), Time::ZERO);
        // Saturates at the sentinel instead of wrapping.
        assert_eq!(Time::from_secs_ceil(1e30), Time::MAX);
    }

    #[test]
    fn saturating_f64_cast_clamps() {
        assert_eq!(ps_from_f64_saturating(-5.0), 0);
        assert_eq!(ps_from_f64_saturating(f64::NAN), 0);
        assert_eq!(ps_from_f64_saturating(1e30), u64::MAX);
        assert_eq!(ps_from_f64_saturating(42.0), 42);
    }

    #[test]
    fn arithmetic() {
        let a = Time::from_ns(10.0);
        let b = Time::from_ns(4.0);
        assert_eq!((a + b).as_ns(), 14.0);
        assert_eq!((a - b).as_ns(), 6.0);
        assert_eq!((a * 3).as_ns(), 30.0);
        assert_eq!((a / 2).as_ns(), 5.0);
        assert_eq!(a.saturating_sub(Time::from_ns(20.0)), Time::ZERO);
        assert_eq!(Time::MAX + a, Time::MAX);
    }

    #[test]
    fn ordering_and_minmax() {
        let a = Time::from_ns(1.0);
        let b = Time::from_ns(2.0);
        assert!(a < b);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
        assert!(Time::MAX.is_never());
        assert!(!Time::ZERO.is_never());
    }

    #[test]
    fn transfer_time_matches_rate() {
        // 1 GB at 1 GB/s = 1 s.
        assert_eq!(transfer_time(1_000_000_000, 1e9), Time::from_secs(1.0));
        // Zero rate never completes.
        assert_eq!(transfer_time(1, 0.0), Time::MAX);
        // Zero bytes completes instantly.
        assert_eq!(transfer_time(0, 1e9), Time::ZERO);
    }

    #[test]
    fn gbps_conversions_invert() {
        for g in [1.0, 25.0, 100.0, 400.0] {
            assert!((to_gbps(gbps(g)) - g).abs() < 1e-9);
        }
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", Time::from_ps(5)), "5ps");
        assert_eq!(format!("{}", Time::from_ns(5.0)), "5.000ns");
        assert_eq!(format!("{}", Time::from_us(5.0)), "5.000us");
        assert_eq!(format!("{}", Time::from_ms(5.0)), "5.000ms");
        assert_eq!(format!("{}", Time::from_secs(5.0)), "5.000s");
        assert_eq!(format!("{}", Time::MAX), "never");
    }

    #[test]
    fn sum_of_times() {
        let total: Time = [1.0, 2.0, 3.0].iter().map(|&n| Time::from_ns(n)).sum();
        assert_eq!(total.as_ns(), 6.0);
    }
}
