//! Time-windowed throughput meters.
//!
//! Experiments report steady-state bandwidth over a measurement window that
//! excludes warm-up. A [`Meter`] accumulates byte (or request) counts with
//! an explicit window start, so callers can `reset` it at the end of warm-up
//! and read `rate` at the end of the run.
//!
//! # Examples
//!
//! ```
//! use simkit::{Meter, Time};
//!
//! let mut m = Meter::new();
//! m.reset(Time::from_ms(10.0));            // warm-up done
//! m.add(Time::from_ms(20.0), 12_500_000.0); // 12.5 MB in 10 ms
//! assert_eq!(m.rate_bytes_per_sec(Time::from_ms(20.0)), 1.25e9);
//! ```

use crate::time::{to_gbps, Time};

/// Accumulates a byte/op count over a measurement window.
#[derive(Clone, Debug, Default)]
pub struct Meter {
    window_start: Time,
    accumulated: f64,
    events: u64,
}

impl Meter {
    /// Creates a meter whose window starts at time zero.
    pub fn new() -> Self {
        Meter::default()
    }

    /// Restarts the measurement window at `now`, discarding prior counts.
    pub fn reset(&mut self, now: Time) {
        self.window_start = now;
        self.accumulated = 0.0;
        self.events = 0;
    }

    /// Adds `amount` (bytes, requests…) observed at `now`.
    ///
    /// Amounts stamped before the window start are ignored, so resetting at
    /// the warm-up boundary cleanly excludes in-flight warm-up work.
    pub fn add(&mut self, at: Time, amount: f64) {
        if at < self.window_start {
            return;
        }
        self.accumulated += amount;
        self.events += 1;
    }

    /// Total amount accumulated in the window.
    pub fn total(&self) -> f64 {
        self.accumulated
    }

    /// Number of `add` events in the window.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Start of the current window.
    pub fn window_start(&self) -> Time {
        self.window_start
    }

    /// Average rate in units/sec over `[window_start, now]`.
    /// Returns 0 for an empty or zero-length window.
    pub fn rate_bytes_per_sec(&self, now: Time) -> f64 {
        if now <= self.window_start {
            return 0.0;
        }
        self.accumulated / (now - self.window_start).as_secs()
    }

    /// Average rate expressed in Gbps (convenience for byte meters).
    pub fn rate_gbps(&self, now: Time) -> f64 {
        to_gbps(self.rate_bytes_per_sec(now))
    }

    /// Average events/sec over the window (IOPS for request meters).
    pub fn rate_per_sec(&self, now: Time) -> f64 {
        if now <= self.window_start {
            return 0.0;
        }
        self.events as f64 / (now - self.window_start).as_secs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_over_window() {
        let mut m = Meter::new();
        m.add(Time::from_secs(0.5), 5e8);
        m.add(Time::from_secs(1.0), 5e8);
        assert_eq!(m.rate_bytes_per_sec(Time::from_secs(1.0)), 1e9);
        assert_eq!(m.rate_gbps(Time::from_secs(1.0)), 8.0);
        assert_eq!(m.rate_per_sec(Time::from_secs(1.0)), 2.0);
    }

    #[test]
    fn reset_discards_warmup() {
        let mut m = Meter::new();
        m.add(Time::from_secs(0.5), 1e9);
        m.reset(Time::from_secs(1.0));
        assert_eq!(m.total(), 0.0);
        m.add(Time::from_secs(2.0), 1e9);
        assert_eq!(m.rate_bytes_per_sec(Time::from_secs(2.0)), 1e9);
    }

    #[test]
    fn pre_window_samples_ignored() {
        let mut m = Meter::new();
        m.reset(Time::from_secs(1.0));
        m.add(Time::from_ms(500.0), 77.0);
        assert_eq!(m.total(), 0.0);
        assert_eq!(m.events(), 0);
    }

    #[test]
    fn zero_window_is_zero_rate() {
        let m = Meter::new();
        assert_eq!(m.rate_bytes_per_sec(Time::ZERO), 0.0);
        assert_eq!(m.rate_per_sec(Time::ZERO), 0.0);
    }
}
