//! A hierarchical timer wheel: the engine's event queue.
//!
//! The queue behind [`crate::Scheduler`] used to be a binary heap over the
//! full ordering key `(time, class, src, seq)`. Every push and pop paid
//! `O(log n)` pointer-chasing comparisons against the *whole* pending set,
//! even though a discrete-event simulation only ever asks for "the events
//! of the immediate future, in order". A timer wheel exploits that access
//! pattern: events are binned by time into hierarchical slots (a calendar
//! with pages of coarser and coarser granularity), and only the events of
//! the earliest non-empty bin are kept fully sorted — in a small *active
//! heap* whose size is the bin population, not the queue population.
//!
//! # Layout
//!
//! * Level-0 slots are `2^14` ps (≈16 ns) wide; each level has 256 slots
//!   and each higher level is 256× coarser, so four levels cover ≈70 s of
//!   simulated future. Events beyond that horizon sit in a small overflow
//!   heap and are swept in when the wheel reaches them (`RunEnd` sentinels
//!   and `Time::MAX` "never" timers land there).
//! * `cpos` is the absolute index of the first undrained level-0 slot.
//!   Everything strictly before `cpos`'s slot boundary lives in the
//!   `active` heap, ordered by the full `(time, class, src, seq)` key;
//!   everything at or after it lives in a wheel slot or in overflow.
//! * Each level keeps a 256-bit occupancy bitmap, so finding the next
//!   non-empty slot is a word scan, not a slot walk.
//!
//! # Invariants
//!
//! 1. `active` holds exactly the pending events with
//!    `at < cpos << L0_BITS`; [`TimerWheel::next_time`] is therefore a
//!    peek of `active` alone. The wheel *eagerly advances*: whenever
//!    `active` drains while events remain, [`TimerWheel::refill`] promotes
//!    the earliest slot immediately, so `active` is empty only when the
//!    whole queue is.
//! 2. At every level ≥ 1, the slot at `cpos`'s own field is never
//!    occupied: crossing into a coarser page cascades that page's events
//!    down *before* any new insert can bin against the new position.
//!    Without this, an insert landing in level 0 of a fresh page could
//!    sort ahead of earlier events still parked in the page's level-1
//!    slot.
//! 3. Slot vectors and the two heaps recycle their capacity; a steady
//!    simulation allocates nothing here after warm-up.
//!
//! # Why the pop order is exactly the heap's
//!
//! Ordering keys are unique (`seq` is a per-source monotone counter), and
//! slot arithmetic partitions events by disjoint time ranges: everything
//! promoted into `active` precedes everything still binned. Within
//! `active`, a real binary heap on the full key restores exact order. So
//! for any interleaving of pushes and pops the wheel emits the same
//! sequence as a global heap — the property suite below drives both
//! structures (the pre-wheel `BinaryHeap` queue is retained verbatim as
//! the oracle) through seeded random schedules and asserts it.

use crate::engine::Scheduled;
use crate::time::Time;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// log2 of the level-0 slot width in picoseconds (16.4 ns — a few slots
/// per typical device latency, so a synchronization window spans tens of
/// slots and the active heap stays small).
const L0_BITS: u32 = 14;
/// log2 of the slots per level.
const SLOT_BITS: u32 = 8;
/// Slots per level.
const SLOTS: usize = 1 << SLOT_BITS;
/// Hierarchy depth: 4 levels cover `2^(14 + 4·8)` ps ≈ 70 seconds.
const LEVELS: usize = 4;
/// Occupancy bitmap words per level.
const WORDS: usize = SLOTS / 64;

/// Hierarchical timer wheel holding [`Scheduled`] events in exact
/// `(time, class, src, seq)` order. See the module docs for the layout.
#[derive(Debug)]
pub(crate) struct TimerWheel<E> {
    /// `LEVELS × SLOTS` event bins, flattened (`level * SLOTS + slot`).
    slots: Vec<Vec<Scheduled<E>>>,
    /// Per-level slot-occupancy bitmaps.
    occ: [[u64; WORDS]; LEVELS],
    /// Absolute level-0 slot index of the first undrained slot.
    cpos: u64,
    /// Events with `at < cpos << L0_BITS`, in full-key order.
    active: BinaryHeap<Reverse<Scheduled<E>>>,
    /// Events beyond the top level's horizon.
    overflow: BinaryHeap<Reverse<Scheduled<E>>>,
    /// Total pending events (active + slots + overflow).
    len: usize,
}

#[inline]
fn field(cpos: u64, level: usize) -> usize {
    ((cpos >> (SLOT_BITS * level as u32)) & (SLOTS as u64 - 1)) as usize
}

impl<E> TimerWheel<E> {
    pub(crate) fn new() -> Self {
        TimerWheel {
            slots: (0..LEVELS * SLOTS).map(|_| Vec::new()).collect(),
            occ: [[0; WORDS]; LEVELS],
            cpos: 0,
            active: BinaryHeap::new(),
            overflow: BinaryHeap::new(),
            len: 0,
        }
    }

    /// Number of pending events.
    #[inline]
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// Timestamp of the earliest pending event. Invariant 1 makes this a
    /// peek of the active heap: `None` iff the queue is empty.
    #[inline]
    pub(crate) fn next_time(&self) -> Option<Time> {
        self.active.peek().map(|Reverse(s)| s.at)
    }

    /// Inserts an event.
    pub(crate) fn push(&mut self, ev: Scheduled<E>) {
        self.len += 1;
        let epos = ev.at.as_ps() >> L0_BITS;
        if epos < self.cpos {
            // Inside the already-promoted region: join the active heap.
            self.active.push(Reverse(ev));
        } else {
            self.bin(epos, ev);
            if self.active.is_empty() {
                self.refill();
            }
        }
    }

    /// Removes and returns the earliest event (exact full-key order).
    pub(crate) fn pop(&mut self) -> Option<Scheduled<E>> {
        let Reverse(ev) = self.active.pop()?;
        self.len -= 1;
        if self.active.is_empty() && self.len > 0 {
            self.refill();
        }
        Some(ev)
    }

    /// Bins an event with `epos >= cpos` into a wheel slot (or overflow).
    fn bin(&mut self, epos: u64, ev: Scheduled<E>) {
        debug_assert!(epos >= self.cpos);
        let diff = epos ^ self.cpos;
        let level = if diff == 0 {
            0
        } else {
            ((63 - diff.leading_zeros()) / SLOT_BITS) as usize
        };
        if level >= LEVELS {
            self.overflow.push(Reverse(ev));
            return;
        }
        let slot = field(epos, level);
        self.slots[level * SLOTS + slot].push(ev);
        self.occ[level][slot / 64] |= 1 << (slot % 64);
    }

    /// First occupied slot of `level` at index `from` or later, if any.
    fn first_occupied(&self, level: usize, from: usize) -> Option<usize> {
        let words = &self.occ[level];
        let mut w = from / 64;
        let mut bits = words[w] & (!0u64 << (from % 64));
        loop {
            if bits != 0 {
                return Some(w * 64 + bits.trailing_zeros() as usize);
            }
            w += 1;
            if w >= WORDS {
                return None;
            }
            bits = words[w];
        }
    }

    /// Empties slot `slot` of `level`, returning its (possibly reused)
    /// backing vector; the caller must put it back via `restore_slot`.
    fn take_slot(&mut self, level: usize, slot: usize) -> Vec<Scheduled<E>> {
        self.occ[level][slot / 64] &= !(1 << (slot % 64));
        std::mem::take(&mut self.slots[level * SLOTS + slot])
    }

    fn restore_slot(&mut self, level: usize, slot: usize, v: Vec<Scheduled<E>>) {
        debug_assert!(v.is_empty());
        self.slots[level * SLOTS + slot] = v;
    }

    /// Invariant 2: after `cpos` moves, no level may keep events parked in
    /// the slot `cpos` now points into — cascade them down, coarsest
    /// first (a level-k cascade can only refill levels below k).
    fn cascade_crossed(&mut self) {
        for level in (1..LEVELS).rev() {
            let f = field(self.cpos, level);
            if self.occ[level][f / 64] & (1 << (f % 64)) != 0 {
                let mut v = self.take_slot(level, f);
                for ev in v.drain(..) {
                    let epos = ev.at.as_ps() >> L0_BITS;
                    self.bin(epos, ev);
                }
                self.restore_slot(level, f, v);
            }
        }
    }

    /// Promotes the earliest non-empty region into the active heap.
    /// Called only when `active` is empty and events remain binned.
    fn refill(&mut self) {
        debug_assert!(self.active.is_empty());
        const TOP_SHIFT: u32 = SLOT_BITS * LEVELS as u32;
        loop {
            // Overflow membership was decided against an older `cpos`;
            // now that the wheel has reached an event's top-level page,
            // pull it into a real slot before draining anything, or a
            // later event already binned in this page could overtake it.
            let top = self.cpos >> TOP_SHIFT;
            while let Some(Reverse(s)) = self.overflow.peek() {
                if (s.at.as_ps() >> L0_BITS) >> TOP_SHIFT != top {
                    break;
                }
                let Some(Reverse(ev)) = self.overflow.pop() else {
                    break;
                };
                let epos = ev.at.as_ps() >> L0_BITS;
                self.bin(epos, ev);
            }
            // The current level-0 page: drain its first occupied slot.
            if let Some(slot) = self.first_occupied(0, field(self.cpos, 0)) {
                let abs = (self.cpos & !(SLOTS as u64 - 1)) | slot as u64;
                debug_assert!(abs >= self.cpos);
                let mut v = self.take_slot(0, slot);
                for ev in v.drain(..) {
                    self.active.push(Reverse(ev));
                }
                self.restore_slot(0, slot, v);
                self.cpos = abs + 1;
                self.cascade_crossed();
                if !self.active.is_empty() {
                    return;
                }
                continue;
            }
            // Page exhausted: jump to the first occupied slot of the
            // lowest non-empty coarser level and cascade it down. Lower
            // levels are provably empty here, so the jump skips nothing.
            let mut cascaded = false;
            for level in 1..LEVELS {
                if let Some(slot) = self.first_occupied(level, field(self.cpos, level)) {
                    let shift = SLOT_BITS * level as u32;
                    let abs = ((self.cpos >> shift) & !(SLOTS as u64 - 1)) | slot as u64;
                    debug_assert!(abs << shift >= self.cpos);
                    self.cpos = abs << shift;
                    let mut v = self.take_slot(level, slot);
                    for ev in v.drain(..) {
                        let epos = ev.at.as_ps() >> L0_BITS;
                        self.bin(epos, ev);
                    }
                    self.restore_slot(level, slot, v);
                    cascaded = true;
                    break;
                }
            }
            if cascaded {
                continue;
            }
            // Wheel empty: everything left is beyond the horizon. Jump
            // the wheel to the overflow minimum; the sweep at the top of
            // the loop then ingests its whole top-level page.
            let Some(Reverse(min)) = self.overflow.peek() else {
                debug_assert_eq!(self.len, self.active.len());
                return;
            };
            let min_epos = min.at.as_ps() >> L0_BITS;
            debug_assert!(min_epos >= self.cpos);
            self.cpos = min_epos;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{CLASS_DELIVERED, CLASS_LOCAL};

    /// The pre-wheel event queue, verbatim: a binary heap over the full
    /// ordering key. The property suite drives it in lockstep with the
    /// wheel and demands identical pop sequences.
    struct HeapOracle {
        heap: BinaryHeap<Reverse<Scheduled<u64>>>,
    }

    impl HeapOracle {
        fn new() -> Self {
            HeapOracle {
                heap: BinaryHeap::new(),
            }
        }
        fn push(&mut self, ev: Scheduled<u64>) {
            self.heap.push(Reverse(ev));
        }
        fn pop(&mut self) -> Option<Scheduled<u64>> {
            self.heap.pop().map(|Reverse(s)| s)
        }
        fn next_time(&self) -> Option<Time> {
            self.heap.peek().map(|Reverse(s)| s.at)
        }
    }

    fn ev(at: u64, class: u8, src: u32, seq: u64) -> Scheduled<u64> {
        Scheduled {
            at: Time::from_ps(at),
            class,
            src,
            seq,
            event: at ^ (seq << 32),
        }
    }

    fn key(s: &Scheduled<u64>) -> (Time, u8, u32, u64, u64) {
        (s.at, s.class, s.src, s.seq, s.event)
    }

    /// Drives wheel and oracle through the same op sequence, asserting
    /// identical `next_time` and pop results at every step.
    fn lockstep(ops: &[Op]) {
        let mut wheel = TimerWheel::new();
        let mut oracle = HeapOracle::new();
        let mut seq = 0u64;
        let mut msg_seq = 0u64;
        for op in ops {
            match *op {
                Op::Push { at, delivered, src } => {
                    let (class, src, s) = if delivered {
                        msg_seq += 1;
                        (CLASS_DELIVERED, src, msg_seq)
                    } else {
                        seq += 1;
                        (CLASS_LOCAL, 0, seq)
                    };
                    wheel.push(ev(at, class, src, s));
                    oracle.push(ev(at, class, src, s));
                }
                Op::Pop => {
                    let w = wheel.pop();
                    let o = oracle.pop();
                    assert_eq!(
                        w.as_ref().map(key),
                        o.as_ref().map(key),
                        "wheel pop diverged from heap oracle"
                    );
                }
            }
            assert_eq!(wheel.next_time(), oracle.next_time(), "peek diverged");
            assert_eq!(wheel.len(), oracle.heap.len(), "length diverged");
        }
        // Drain both fully: the tail order must match too.
        loop {
            let w = wheel.pop();
            let o = oracle.pop();
            assert_eq!(w.as_ref().map(key), o.as_ref().map(key), "drain diverged");
            if w.is_none() {
                break;
            }
        }
    }

    enum Op {
        Push { at: u64, delivered: bool, src: u32 },
        Pop,
    }

    /// Times that stress every structural boundary: slot edges, page
    /// edges, level transitions, the overflow horizon, and Time::MAX.
    fn stress_time(raw: u64, popped_floor: u64) -> u64 {
        const SLOT: u64 = 1 << L0_BITS;
        const PAGE: u64 = SLOT << SLOT_BITS;
        const L2: u64 = PAGE << SLOT_BITS;
        const HORIZON: u64 = 1 << (L0_BITS + SLOT_BITS * LEVELS as u32);
        let base = popped_floor;
        match raw % 11 {
            0 => base + raw % SLOT,
            1 => base + SLOT * (raw % 600),
            2 => (base / SLOT + 1) * SLOT,               // exact slot edge
            3 => (base / PAGE + 1) * PAGE,               // exact page edge
            4 => (base / PAGE + 1) * PAGE - 1,           // just before a page edge
            5 => base + PAGE * (1 + raw % 5),            // level-1 distances
            6 => base + L2 * (1 + raw % 3),              // level-2 distances
            7 => base + HORIZON + raw % (4 * PAGE),      // overflow
            8 => base + 2 * HORIZON + raw % L2,          // deep overflow
            9 => base,                                   // exact tie with floor
            _ => u64::MAX - raw % 3,                     // near/at Time::MAX
        }
    }

    testkit::prop! {
        cases = 64;

        fn wheel_matches_heap_oracle_on_random_schedules(
            raws in testkit::gen::vecs(
                (testkit::gen::u64s(0..u64::MAX / 4), testkit::gen::u64s(0..8)),
                1..=400,
            ),
        ) {
            // Replay the raw stream as a push/pop mix. A running floor
            // mimics the scheduler contract (never schedule into the
            // past), but nothing in the wheel itself requires it.
            let mut ops = Vec::new();
            let mut floor = 0u64;
            for (raw, kind) in &raws {
                match kind {
                    0 | 1 => ops.push(Op::Pop),
                    k => {
                        let at = stress_time(*raw, floor);
                        floor = floor.max(at / 4); // keep later pushes spread
                        ops.push(Op::Push {
                            at,
                            delivered: k % 2 == 0,
                            src: (*raw % 5) as u32,
                        });
                    }
                }
            }
            lockstep(&ops);
        }
    }

    #[test]
    fn same_instant_ties_pop_in_class_src_seq_order() {
        let mut wheel = TimerWheel::new();
        // Locals pushed first, then deliveries from two sources, all at
        // one instant: pops must order deliveries (class 0) first, by
        // (src, seq), then locals in seq order.
        wheel.push(ev(1000, CLASS_LOCAL, 0, 7));
        wheel.push(ev(1000, CLASS_LOCAL, 0, 3));
        wheel.push(ev(1000, CLASS_DELIVERED, 2, 1));
        wheel.push(ev(1000, CLASS_DELIVERED, 1, 9));
        let got: Vec<(u8, u32, u64)> = std::iter::from_fn(|| wheel.pop())
            .map(|s| (s.class, s.src, s.seq))
            .collect();
        assert_eq!(got, vec![(0, 1, 9), (0, 2, 1), (1, 0, 3), (1, 0, 7)]);
    }

    #[test]
    fn far_future_events_survive_the_overflow_horizon() {
        const HORIZON: u64 = 1 << (L0_BITS + SLOT_BITS * LEVELS as u32);
        let mut wheel = TimerWheel::new();
        wheel.push(ev(5 * HORIZON + 17, CLASS_LOCAL, 0, 1));
        wheel.push(ev(3, CLASS_LOCAL, 0, 2));
        wheel.push(ev(u64::MAX, CLASS_LOCAL, 0, 3));
        assert_eq!(wheel.pop().unwrap().at.as_ps(), 3);
        assert_eq!(wheel.pop().unwrap().at.as_ps(), 5 * HORIZON + 17);
        assert_eq!(wheel.pop().unwrap().at.as_ps(), u64::MAX);
        assert!(wheel.pop().is_none());
        assert_eq!(wheel.len(), 0);
    }

    #[test]
    fn insert_into_fresh_page_cannot_overtake_parked_coarser_slot() {
        // Regression shape for invariant 2: park an event in a level-1
        // slot, advance the wheel into that page via a level-0 drain at
        // the page edge, then insert a *later* event that bins into
        // level 0 of the fresh page. Without the crossing cascade the
        // later event would pop first.
        const SLOT: u64 = 1 << L0_BITS;
        const PAGE: u64 = SLOT << SLOT_BITS;
        let mut wheel = TimerWheel::new();
        wheel.push(ev(PAGE + 5, CLASS_LOCAL, 0, 1)); // parks in level 1
        wheel.push(ev(PAGE - 1, CLASS_LOCAL, 0, 2)); // last slot of page 0
        assert_eq!(wheel.pop().unwrap().at.as_ps(), PAGE - 1);
        // cpos is now exactly at the page edge; this push must not
        // overtake the parked PAGE+5 event.
        wheel.push(ev(PAGE + 9 * SLOT, CLASS_LOCAL, 0, 3));
        assert_eq!(wheel.pop().unwrap().at.as_ps(), PAGE + 5);
        assert_eq!(wheel.pop().unwrap().at.as_ps(), PAGE + 9 * SLOT);
    }
}
