//! A minimal JSON writer and reader.
//!
//! Replaces `serde` for the workspace's report emitters. Reports are flat
//! records of strings, numbers, and small arrays, so a hand-rolled builder
//! with correct string escaping and finite-float handling covers everything
//! the repo serializes — with zero dependencies and no derive machinery.
//! The matching recursive-descent [`parse`] reads those reports (and the
//! tracekit Chrome exports) back for round-trip validation in tests and CI.
//!
//! ```
//! use simkit::json::Object;
//!
//! let s = Object::new()
//!     .field("label", "SmartDS-6")
//!     .field("gbps", 347.5)
//!     .field("feasible", true)
//!     .finish();
//! assert_eq!(s, r#"{"label":"SmartDS-6","gbps":347.5,"feasible":true}"#);
//! ```

use std::fmt::Write as _;

/// Escapes and quotes one JSON string.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A value that can be rendered as a JSON token.
pub trait ToJson {
    /// Renders `self` as one JSON value.
    fn to_json(&self) -> String;
}

impl ToJson for &str {
    fn to_json(&self) -> String {
        escape(self)
    }
}

impl ToJson for String {
    fn to_json(&self) -> String {
        escape(self)
    }
}

impl ToJson for bool {
    fn to_json(&self) -> String {
        if *self { "true" } else { "false" }.to_string()
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> String {
        // JSON has no NaN/Infinity; reports treat them as null.
        if self.is_finite() {
            let mut s = format!("{self}");
            // `{}` prints integral floats without a point; keep them valid
            // but unambiguous as floats is unnecessary — JSON allows both.
            if s == "-0" {
                s = "0".to_string();
            }
            s
        } else {
            "null".to_string()
        }
    }
}

macro_rules! int_to_json {
    ($($ty:ty),+) => {
        $(impl ToJson for $ty {
            fn to_json(&self) -> String {
                self.to_string()
            }
        })+
    };
}

int_to_json!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: ToJson> ToJson for &T {
    fn to_json(&self) -> String {
        (*self).to_json()
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> String {
        self.as_slice().to_json()
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> String {
        let mut out = String::from("[");
        for (i, v) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&v.to_json());
        }
        out.push(']');
        out
    }
}

impl<T: ToJson, const N: usize> ToJson for [T; N] {
    fn to_json(&self) -> String {
        self.as_slice().to_json()
    }
}

/// Builder for one JSON object, preserving field order.
#[derive(Default)]
pub struct Object {
    body: String,
}

impl Object {
    /// An empty object.
    pub fn new() -> Self {
        Object::default()
    }

    /// Appends one field.
    pub fn field(mut self, name: &str, value: impl ToJson) -> Self {
        if !self.body.is_empty() {
            self.body.push(',');
        }
        self.body.push_str(&escape(name));
        self.body.push(':');
        self.body.push_str(&value.to_json());
        self
    }

    /// Appends one field whose value is already-rendered JSON (for nested
    /// objects and arrays of objects).
    pub fn field_raw(mut self, name: &str, json: &str) -> Self {
        if !self.body.is_empty() {
            self.body.push(',');
        }
        self.body.push_str(&escape(name));
        self.body.push(':');
        self.body.push_str(json);
        self
    }

    /// Renders the object.
    pub fn finish(self) -> String {
        format!("{{{}}}", self.body)
    }
}

/// Renders a slice of already-rendered JSON values as a JSON array.
pub fn array_raw<S: AsRef<str>>(items: &[S]) -> String {
    let mut out = String::from("[");
    for (i, v) in items.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(v.as_ref());
    }
    out.push(']');
    out
}

/// A parsed JSON value — the reader-side dual of [`ToJson`].
///
/// Objects keep their fields in document order (duplicate keys are kept;
/// [`Value::get`] returns the first), mirroring what [`Object`] emits.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null` (also what the writer emits for non-finite floats).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, widened to `f64`.
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, as ordered `(key, value)` pairs.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// First field named `name`, when this is an object.
    pub fn get(&self, name: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == name).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Element `i`, when this is an array.
    pub fn item(&self, i: usize) -> Option<&Value> {
        match self {
            Value::Arr(items) => items.get(i),
            _ => None,
        }
    }

    /// The number, when this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string, when this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, when this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, when this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The fields, when this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(fields) => Some(fields),
            _ => None,
        }
    }
}

/// A parse failure: what went wrong and the byte offset it was noticed at.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input.
    pub at: usize,
    /// Static description of the failure.
    pub msg: &'static str,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json parse error at byte {}: {}", self.at, self.msg)
    }
}

/// Maximum nesting depth [`parse`] accepts, bounding recursion.
const MAX_DEPTH: usize = 128;

/// Parses one JSON document. Trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        b: text.as_bytes(),
        i: 0,
    };
    p.ws();
    let v = p.value(0)?;
    p.ws();
    if p.i != p.b.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &'static str) -> ParseError {
        ParseError { at: self.i, msg }
    }

    fn ws(&mut self) {
        while matches!(self.b.get(self.i), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.i += 1;
        }
    }

    fn eat(&mut self, c: u8) -> bool {
        if self.b.get(self.i) == Some(&c) {
            self.i += 1;
            true
        } else {
            false
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, ParseError> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.b.get(self.i) {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.i += 1; // '['
        let mut items = Vec::new();
        self.ws();
        if self.eat(b']') {
            return Ok(Value::Arr(items));
        }
        loop {
            self.ws();
            items.push(self.value(depth + 1)?);
            self.ws();
            if self.eat(b']') {
                return Ok(Value::Arr(items));
            }
            if !self.eat(b',') {
                return Err(self.err("expected ',' or ']'"));
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.i += 1; // '{'
        let mut fields = Vec::new();
        self.ws();
        if self.eat(b'}') {
            return Ok(Value::Obj(fields));
        }
        loop {
            self.ws();
            if self.b.get(self.i) != Some(&b'"') {
                return Err(self.err("expected a field name"));
            }
            let key = self.string()?;
            self.ws();
            if !self.eat(b':') {
                return Err(self.err("expected ':'"));
            }
            self.ws();
            let val = self.value(depth + 1)?;
            fields.push((key, val));
            self.ws();
            if self.eat(b'}') {
                return Ok(Value::Obj(fields));
            }
            if !self.eat(b',') {
                return Err(self.err("expected ',' or '}'"));
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.i += 1; // '"'
        let mut out = String::new();
        loop {
            let start = self.i;
            // Fast path: copy the run of plain bytes in one slice.
            while !matches!(self.b.get(self.i), None | Some(b'"' | b'\\')) {
                self.i += 1;
            }
            if self.i > start {
                match std::str::from_utf8(&self.b[start..self.i]) {
                    Ok(s) => out.push_str(s),
                    Err(_) => return Err(self.err("invalid utf-8")),
                }
            }
            match self.b.get(self.i) {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.b.get(self.i) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.i += 1;
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect an immediate \uDCxx.
                                if !(self.eat(b'\\') && self.eat(b'u')) {
                                    return Err(self.err("lone surrogate"));
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("lone surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            match char::from_u32(code) {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid code point")),
                            }
                            continue; // hex4 already advanced past the digits
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.i += 1;
                }
                Some(_) => return Err(self.err("expected a string byte")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = match self.b.get(self.i) {
                Some(c @ b'0'..=b'9') => (c - b'0') as u32,
                Some(c @ b'a'..=b'f') => (c - b'a') as u32 + 10,
                Some(c @ b'A'..=b'F') => (c - b'A') as u32 + 10,
                _ => return Err(self.err("expected 4 hex digits")),
            };
            v = v * 16 + d;
            self.i += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.i;
        while matches!(
            self.b.get(self.i),
            Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        ) {
            self.i += 1;
        }
        let text = match std::str::from_utf8(&self.b[start..self.i]) {
            Ok(s) => s,
            Err(_) => return Err(self.err("invalid number")),
        };
        match text.parse::<f64>() {
            Ok(n) if n.is_finite() => Ok(Value::Num(n)),
            _ => Err(self.err("invalid number")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_covers_specials() {
        assert_eq!(escape("a\"b\\c\nd"), r#""a\"b\\c\nd""#);
        assert_eq!(escape("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn object_builder_round() {
        let s = Object::new()
            .field("n", 3u64)
            .field("ok", false)
            .field("xs", [1.5f64, 2.0])
            .field_raw("nested", &Object::new().field("a", 1u8).finish())
            .finish();
        assert_eq!(s, r#"{"n":3,"ok":false,"xs":[1.5,2],"nested":{"a":1}}"#);
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(f64::NAN.to_json(), "null");
        assert_eq!(f64::INFINITY.to_json(), "null");
        assert_eq!((-0.0f64).to_json(), "0");
    }

    #[test]
    fn arrays_of_rendered_objects() {
        let rows = [
            Object::new().field("i", 0u8).finish(),
            Object::new().field("i", 1u8).finish(),
        ];
        assert_eq!(array_raw(&rows), r#"[{"i":0},{"i":1}]"#);
    }

    #[test]
    fn parse_reads_back_what_the_writer_emits() {
        let doc = Object::new()
            .field("label", "SmartDS-6 \"fast\"\n")
            .field("gbps", 347.5)
            .field("n", 12u64)
            .field("feasible", true)
            .field("gap", f64::NAN)
            .field("xs", [1.5f64, 2.0])
            .field_raw("nested", &Object::new().field("a", 1u8).finish())
            .finish();
        let v = parse(&doc).expect("round-trip");
        assert_eq!(v.get("label").and_then(Value::as_str), Some("SmartDS-6 \"fast\"\n"));
        assert_eq!(v.get("gbps").and_then(Value::as_f64), Some(347.5));
        assert_eq!(v.get("n").and_then(Value::as_f64), Some(12.0));
        assert_eq!(v.get("feasible").and_then(Value::as_bool), Some(true));
        assert_eq!(v.get("gap"), Some(&Value::Null));
        assert_eq!(v.get("xs").and_then(|x| x.item(1)).and_then(Value::as_f64), Some(2.0));
        assert_eq!(
            v.get("nested").and_then(|n| n.get("a")).and_then(Value::as_f64),
            Some(1.0)
        );
        assert_eq!(v.as_obj().map(<[_]>::len), Some(7));
    }

    #[test]
    fn parse_handles_whitespace_escapes_and_unicode() {
        let v = parse(" [ 1 ,\t{\"k\" : \"\\u0041\\ud83d\\ude00\\\\\"} , null , -2.5e2 ] ")
            .expect("parses");
        assert_eq!(v.item(0).and_then(Value::as_f64), Some(1.0));
        assert_eq!(
            v.item(1).and_then(|o| o.get("k")).and_then(Value::as_str),
            Some("A\u{1F600}\\")
        );
        assert_eq!(v.item(2), Some(&Value::Null));
        assert_eq!(v.item(3).and_then(Value::as_f64), Some(-250.0));
        assert_eq!(v.as_arr().map(<[_]>::len), Some(4));
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        for bad in [
            "", "{", "[1,", "{\"a\":}", "tru", "\"unterminated", "1 2", "{\"a\" 1}",
            "[1]]", "\"\\u12\"", "\"\\ud800x\"", "nan",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
        let e = parse("[1,]").expect_err("trailing comma");
        assert!(e.to_string().contains("byte"), "{e}");
    }
}
