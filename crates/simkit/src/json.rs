//! A minimal JSON writer (serializer only).
//!
//! Replaces `serde` for the workspace's report emitters. Reports are flat
//! records of strings, numbers, and small arrays, so a hand-rolled builder
//! with correct string escaping and finite-float handling covers everything
//! the repo serializes — with zero dependencies and no derive machinery.
//!
//! ```
//! use simkit::json::Object;
//!
//! let s = Object::new()
//!     .field("label", "SmartDS-6")
//!     .field("gbps", 347.5)
//!     .field("feasible", true)
//!     .finish();
//! assert_eq!(s, r#"{"label":"SmartDS-6","gbps":347.5,"feasible":true}"#);
//! ```

use std::fmt::Write as _;

/// Escapes and quotes one JSON string.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A value that can be rendered as a JSON token.
pub trait ToJson {
    /// Renders `self` as one JSON value.
    fn to_json(&self) -> String;
}

impl ToJson for &str {
    fn to_json(&self) -> String {
        escape(self)
    }
}

impl ToJson for String {
    fn to_json(&self) -> String {
        escape(self)
    }
}

impl ToJson for bool {
    fn to_json(&self) -> String {
        if *self { "true" } else { "false" }.to_string()
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> String {
        // JSON has no NaN/Infinity; reports treat them as null.
        if self.is_finite() {
            let mut s = format!("{self}");
            // `{}` prints integral floats without a point; keep them valid
            // but unambiguous as floats is unnecessary — JSON allows both.
            if s == "-0" {
                s = "0".to_string();
            }
            s
        } else {
            "null".to_string()
        }
    }
}

macro_rules! int_to_json {
    ($($ty:ty),+) => {
        $(impl ToJson for $ty {
            fn to_json(&self) -> String {
                self.to_string()
            }
        })+
    };
}

int_to_json!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: ToJson> ToJson for &T {
    fn to_json(&self) -> String {
        (*self).to_json()
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> String {
        self.as_slice().to_json()
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> String {
        let mut out = String::from("[");
        for (i, v) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&v.to_json());
        }
        out.push(']');
        out
    }
}

impl<T: ToJson, const N: usize> ToJson for [T; N] {
    fn to_json(&self) -> String {
        self.as_slice().to_json()
    }
}

/// Builder for one JSON object, preserving field order.
#[derive(Default)]
pub struct Object {
    body: String,
}

impl Object {
    /// An empty object.
    pub fn new() -> Self {
        Object::default()
    }

    /// Appends one field.
    pub fn field(mut self, name: &str, value: impl ToJson) -> Self {
        if !self.body.is_empty() {
            self.body.push(',');
        }
        self.body.push_str(&escape(name));
        self.body.push(':');
        self.body.push_str(&value.to_json());
        self
    }

    /// Appends one field whose value is already-rendered JSON (for nested
    /// objects and arrays of objects).
    pub fn field_raw(mut self, name: &str, json: &str) -> Self {
        if !self.body.is_empty() {
            self.body.push(',');
        }
        self.body.push_str(&escape(name));
        self.body.push(':');
        self.body.push_str(json);
        self
    }

    /// Renders the object.
    pub fn finish(self) -> String {
        format!("{{{}}}", self.body)
    }
}

/// Renders a slice of already-rendered JSON values as a JSON array.
pub fn array_raw<S: AsRef<str>>(items: &[S]) -> String {
    let mut out = String::from("[");
    for (i, v) in items.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(v.as_ref());
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_covers_specials() {
        assert_eq!(escape("a\"b\\c\nd"), r#""a\"b\\c\nd""#);
        assert_eq!(escape("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn object_builder_round() {
        let s = Object::new()
            .field("n", 3u64)
            .field("ok", false)
            .field("xs", [1.5f64, 2.0])
            .field_raw("nested", &Object::new().field("a", 1u8).finish())
            .finish();
        assert_eq!(s, r#"{"n":3,"ok":false,"xs":[1.5,2],"nested":{"a":1}}"#);
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(f64::NAN.to_json(), "null");
        assert_eq!(f64::INFINITY.to_json(), "null");
        assert_eq!((-0.0f64).to_json(), "0");
    }

    #[test]
    fn arrays_of_rendered_objects() {
        let rows = [
            Object::new().field("i", 0u8).finish(),
            Object::new().field("i", 1u8).finish(),
        ];
        assert_eq!(array_raw(&rows), r#"[{"i":0},{"i":1}]"#);
    }
}
