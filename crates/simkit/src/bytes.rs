//! A cheaply-cloneable, sliceable byte buffer.
//!
//! The workspace builds with zero external dependencies, so this module
//! replaces the `bytes` crate's `Bytes` with the minimal surface the
//! message rope, memory pools, and chunk stores need: an immutable
//! `Arc<[u8]>` plus a `[start, end)` window. `clone` bumps a refcount and
//! [`Bytes::slice`] narrows the window — neither copies payload bytes, which
//! is what makes AAMS split/reassemble zero-copy in the simulation.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// An immutable, reference-counted byte slice.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer (no allocation).
    pub fn new() -> Self {
        Bytes::default()
    }

    /// A buffer that copies `data` (one allocation).
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Length of the visible window.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True if the window is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A sub-window of this buffer, sharing the same allocation.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the current window.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&v) => v,
            Bound::Excluded(&v) => v + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&v) => v + 1,
            Bound::Excluded(&v) => v,
            Bound::Unbounded => self.len(),
        };
        assert!(
            lo <= hi && hi <= self.len(),
            "slice {lo}..{hi} out of bounds of {} bytes",
            self.len()
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// The visible window as a plain slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// Copies the window into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let data: Arc<[u8]> = v.into();
        Bytes {
            start: 0,
            end: data.len(),
            data,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::from(v.to_vec())
    }
}

impl<const N: usize> From<[u8; N]> for Bytes {
    fn from(v: [u8; N]) -> Self {
        Bytes::from(v.to_vec())
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(v: Box<[u8]>) -> Self {
        Bytes::from(v.into_vec())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

// Render like the `bytes` crate: a byte-string literal, not a number list.
impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_and_slice_share_no_copies() {
        let b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        let c = b.clone();
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        assert_eq!(c, b);
        assert!(Arc::ptr_eq(&b.data, &s.data));
    }

    #[test]
    fn slice_of_slice_composes() {
        let b = Bytes::from((0u8..10).collect::<Vec<_>>());
        let s = b.slice(2..8).slice(1..=3);
        assert_eq!(&s[..], &[3, 4, 5]);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn open_ranges() {
        let b = Bytes::from(vec![9u8; 6]);
        assert_eq!(b.slice(..).len(), 6);
        assert_eq!(b.slice(2..).len(), 4);
        assert_eq!(b.slice(..2).len(), 2);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oversize_slice_panics() {
        Bytes::from(vec![0u8; 4]).slice(2..6);
    }

    #[test]
    fn equality_ignores_backing_layout() {
        let a = Bytes::from(vec![7u8, 8, 9]);
        let b = Bytes::from(vec![0u8, 7, 8, 9, 0]).slice(1..4);
        assert_eq!(a, b);
        assert_eq!(a, vec![7u8, 8, 9]);
        assert_eq!(&a[..], [7u8, 8, 9]);
    }

    #[test]
    fn empty_is_cheap_and_debuggable() {
        let e = Bytes::new();
        assert!(e.is_empty());
        assert_eq!(format!("{:?}", Bytes::from(vec![b'a', 0, b'\n'])), "b\"a\\x00\\n\"");
    }
}
