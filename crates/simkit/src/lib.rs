//! # simkit — a small deterministic discrete-event simulation engine
//!
//! `simkit` is the substrate under the SmartDS reproduction: a dependency-free
//! discrete-event core plus the resource models every middle-tier design is
//! built from.
//!
//! * [`Simulation`] / [`World`] / [`Scheduler`] — the event loop. A world is a
//!   single state machine owning all model objects; events at equal
//!   timestamps fire in FIFO order, so runs are exactly reproducible.
//! * [`ShardedSim`] / [`ShardWorld`] — conservative-lookahead parallel
//!   execution of several worlds, deterministic for any `SMARTDS_THREADS`.
//! * [`Time`] — integer-picosecond instants and durations.
//! * [`FluidResource`] — weighted max-min fair bandwidth sharing
//!   (links, PCIe, memory channels, HBM, compression engines).
//! * [`ServerPool`] — k-server FIFO queues (CPU cores, Arm cores).
//! * [`Histogram`] — HDR-style latency histogram (mean/p99/p999).
//! * [`Meter`] — windowed throughput meters that exclude warm-up.
//! * [`Rng`] — seedable SplitMix64 for deterministic workloads.
//!
//! # Example: two flows sharing a link inside an event loop
//!
//! ```
//! use simkit::{gbps, FlowSpec, FluidResource, Scheduler, Simulation, Time, World};
//!
//! struct Net {
//!     link: FluidResource,
//!     done: Vec<u64>,
//! }
//!
//! #[derive(Debug)]
//! enum Ev {
//!     Wake(u64), // fluid epoch
//! }
//!
//! impl Net {
//!     fn arm(&mut self, sched: &mut Scheduler<Ev>) {
//!         if let Some(at) = self.link.next_wake() {
//!             sched.schedule_at(at, Ev::Wake(self.link.epoch()));
//!         }
//!     }
//! }
//!
//! impl World for Net {
//!     type Event = Ev;
//!     fn handle(&mut self, ev: Ev, sched: &mut Scheduler<Ev>) {
//!         let Ev::Wake(epoch) = ev;
//!         if epoch != self.link.epoch() {
//!             return; // stale wakeup
//!         }
//!         self.link.sync(sched.now());
//!         for end in self.link.take_completed() {
//!             self.done.push(end.token);
//!         }
//!         self.arm(sched);
//!     }
//! }
//!
//! let mut net = Net { link: FluidResource::new("nic", gbps(100.0)), done: vec![] };
//! net.link.start_flow(Time::ZERO, 4096.0, FlowSpec::new(), 1);
//! net.link.start_flow(Time::ZERO, 8192.0, FlowSpec::new(), 2);
//! let (first_wake, epoch) = (net.link.next_wake().unwrap(), net.link.epoch());
//! let mut sim = Simulation::new(net);
//! sim.schedule_at(first_wake, Ev::Wake(epoch));
//! sim.run();
//! // The small flow finishes first, then the large one.
//! assert_eq!(sim.world().done, vec![1, 2]);
//! ```
//!
//! (The cluster driver in the `smartds` crate shows the full wiring.)

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bytes;
mod engine;
mod fluid;
mod hist;
pub mod json;
mod meter;
mod rng;
pub mod sanitizer;
mod server;
pub mod shard;
mod time;
pub mod wake;
mod wheel;

pub use bytes::Bytes;
pub use engine::{Scheduler, Simulation, World};
pub use sanitizer::ShardTag;
pub use shard::{env_threads, EngineStats, ShardWorld, ShardedSim};
pub use fluid::{FlowEnd, FlowId, FlowSpec, FluidResource};
pub use wake::{WakeCoalescer, WakeEmit};
pub use hist::Histogram;
pub use meter::Meter;
pub use rng::Rng;
pub use server::{JobStart, ServerPool};
pub use time::{gbps, to_gbps, transfer_time, Time, PS_PER_MS, PS_PER_NS, PS_PER_SEC, PS_PER_US};
