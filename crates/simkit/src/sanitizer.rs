//! `shardsan` — a debug-build shard-ownership sanitizer for the sharded
//! engine.
//!
//! The determinism argument of [`crate::shard`] rests on a discipline the
//! type system cannot see: during the parallel section of a window, a
//! worker may touch only the state owned by the shard it is executing,
//! and *barrier-time globals* (state shared across shards) may mutate
//! only inside the single-threaded merge. A violation does not deadlock
//! or crash — it silently makes the executed schedule depend on the
//! thread interleaving, which the golden suites only catch after it
//! corrupts an exercised seed.
//!
//! `shardsan` turns that discipline into a runtime check. Worlds tag
//! their owned state with a [`ShardTag`] carrying the owning shard id;
//! accessors call [`ShardTag::check`] on entry. The engine maintains a
//! thread-local mode:
//!
//! - **Inactive** — outside any `ShardedSim::run` (plain [`crate::Simulation`],
//!   setup/teardown code, unit tests). Every check passes: sequential
//!   execution cannot race.
//! - **Parallel { shard, at, seq }** — this worker is executing the given
//!   shard's events inside a window. [`ShardTag::check`] panics unless the
//!   tag's owner is that shard; [`assert_barrier`] panics unconditionally.
//! - **Barrier { at }** — the single-threaded merge (message delivery and
//!   `handle_global`). Ownership checks pass (exactly one thread runs),
//!   and [`assert_barrier`] documents+verifies that a global mutation
//!   happens here and nowhere else.
//!
//! Panic messages carry the offending *shard pair*, the simulated event
//! time, and the event's scheduler sequence number, so a report like
//! `shard 0 touched … owned by shard 3 at t=1234ps seq=56` replays
//! deterministically from the seed at any `SMARTDS_THREADS`.
//!
//! The whole tracker is `#[cfg(debug_assertions)]`-gated: release builds
//! (golden fixture regeneration, perf baselines) compile every hook to a
//! no-op, so the sanitizer costs nothing where throughput is measured,
//! while `cargo test` — a dev-profile build — always runs sanitized.

use crate::time::Time;

/// What the current thread is doing, from the engine's point of view.
#[cfg(debug_assertions)]
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Mode {
    /// Not inside `ShardedSim::run` — sequential code, checks pass.
    Inactive,
    /// Executing `shard`'s events in the parallel section of a window.
    Parallel { shard: u32, at_ps: u64, seq: u64 },
    /// Inside the single-threaded merge at the window horizon.
    Barrier { at_ps: u64 },
}

#[cfg(debug_assertions)]
thread_local! {
    static MODE: std::cell::Cell<Mode> = const { std::cell::Cell::new(Mode::Inactive) };
}

/// Tags a piece of simulation state with the shard that owns it.
///
/// Embed one in each shard-owned structure and call [`ShardTag::check`]
/// at the top of every accessor that reads or mutates the owned state.
/// In release builds the check compiles to nothing; in debug builds it
/// panics when a worker executing a *different* shard reaches the
/// accessor during the parallel section of a window.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ShardTag {
    owner: u32,
}

impl ShardTag {
    /// Tags state as owned by shard `owner` (the index into the
    /// `ShardedSim` world vector).
    pub const fn new(owner: u32) -> Self {
        ShardTag { owner }
    }

    /// The owning shard id.
    pub const fn owner(&self) -> u32 {
        self.owner
    }

    /// Asserts the executing worker may touch this state. `what` names
    /// the state for the panic message (e.g. `"storage server chunks"`).
    ///
    /// # Panics
    ///
    /// Panics in debug builds when called from the parallel section of a
    /// window while a different shard's events are executing. Passes in
    /// release builds, outside `ShardedSim::run`, and during the
    /// single-threaded merge.
    #[track_caller]
    pub fn check(&self, what: &str) {
        #[cfg(debug_assertions)]
        if let Mode::Parallel { shard, at_ps, seq } = MODE.get() {
            assert!(
                shard == self.owner,
                "shardsan: shard {shard} touched {what} owned by shard {owner} at \
                 t={at_ps}ps seq={seq}; cross-shard effects must travel as messages \
                 (Scheduler::send) or barrier globals (Scheduler::defer_global). \
                 Replay: same seed, any SMARTDS_THREADS.",
                owner = self.owner,
            );
        }
        #[cfg(not(debug_assertions))]
        let _ = what;
    }
}

/// Asserts that barrier-time global state (state no single shard owns)
/// is being mutated outside the parallel section — i.e. either in the
/// single-threaded merge (`handle_global`) or in plain sequential code.
///
/// # Panics
///
/// Panics in debug builds when called while a worker is executing a
/// shard's events inside a window.
#[track_caller]
pub fn assert_barrier(what: &str) {
    #[cfg(debug_assertions)]
    if let Mode::Parallel { shard, at_ps, seq } = MODE.get() {
        panic!(
            "shardsan: {what} mutated during the parallel section (worker running \
             shard {shard} at t={at_ps}ps seq={seq}); barrier-time globals may only \
             change in the single-threaded merge. Replay: same seed, any \
             SMARTDS_THREADS.",
        );
    }
    #[cfg(not(debug_assertions))]
    let _ = what;
}

/// Engine hook: the current worker is about to execute one event of
/// `shard` at time `at` with scheduler sequence `seq`.
#[allow(unused_variables)]
pub(crate) fn enter_event(shard: u32, at: Time, seq: u64) {
    #[cfg(debug_assertions)]
    MODE.set(Mode::Parallel {
        shard,
        at_ps: at.as_ps(),
        seq,
    });
}

/// Engine hook: the current worker finished its shards for this window.
pub(crate) fn exit_parallel() {
    #[cfg(debug_assertions)]
    MODE.set(Mode::Inactive);
}

/// Engine hook: the coordinator entered the single-threaded merge.
#[allow(unused_variables)]
pub(crate) fn enter_barrier(at: Time) {
    #[cfg(debug_assertions)]
    MODE.set(Mode::Barrier { at_ps: at.as_ps() });
}

/// Engine hook: the merge is done; back to inactive until the next window.
pub(crate) fn exit_barrier() {
    #[cfg(debug_assertions)]
    MODE.set(Mode::Inactive);
}

#[cfg(test)]
mod tests {
    use super::*;

    // Every test restores Inactive on exit so test-thread reuse cannot
    // leak a mode into an unrelated test.
    struct Reset;
    impl Drop for Reset {
        fn drop(&mut self) {
            exit_parallel();
        }
    }

    #[test]
    fn inactive_mode_passes_everything() {
        let _r = Reset;
        let tag = ShardTag::new(3);
        tag.check("anything");
        assert_barrier("anything");
        assert_eq!(tag.owner(), 3);
    }

    #[test]
    fn owner_check_passes_for_the_executing_shard() {
        let _r = Reset;
        enter_event(2, Time::from_ps(10), 7);
        ShardTag::new(2).check("own state");
        exit_parallel();
    }

    #[test]
    #[cfg(debug_assertions)]
    fn foreign_shard_touch_panics_with_shard_pair_time_and_seq() {
        let _r = Reset;
        enter_event(0, Time::from_ps(1234), 56);
        let err = std::panic::catch_unwind(|| {
            ShardTag::new(3).check("the victim chunk store");
        })
        .expect_err("cross-shard touch must panic");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| err.downcast_ref::<&str>().unwrap_or(&"").to_string());
        assert!(msg.contains("shardsan"), "{msg}");
        assert!(msg.contains("shard 0"), "{msg}");
        assert!(msg.contains("shard 3"), "{msg}");
        assert!(msg.contains("t=1234ps"), "{msg}");
        assert!(msg.contains("seq=56"), "{msg}");
    }

    #[test]
    #[cfg(debug_assertions)]
    fn barrier_assert_panics_inside_the_parallel_section() {
        let _r = Reset;
        enter_event(1, Time::from_ps(5), 9);
        let err = std::panic::catch_unwind(|| {
            assert_barrier("cluster-wide scrub bookkeeping");
        })
        .expect_err("global mutation inside a window must panic");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| err.downcast_ref::<&str>().unwrap_or(&"").to_string());
        assert!(msg.contains("parallel section"), "{msg}");
        assert!(msg.contains("shard 1"), "{msg}");
    }

    #[test]
    fn barrier_mode_passes_owner_checks_and_barrier_asserts() {
        let _r = Reset;
        enter_barrier(Time::from_ps(99));
        ShardTag::new(7).check("merge-time delivery");
        assert_barrier("merge-time global");
        exit_barrier();
    }
}
