//! Property tests for the fluid-resource invariants: conservation, work
//! conservation, and completion exactness under arbitrary operation
//! sequences.

use simkit::{FlowSpec, FluidResource, Time};
use testkit::gen::{self, Gen};
use testkit::one_of;

#[derive(Clone, Debug)]
enum Op {
    Start { bytes: u32, weight: u8, cap: u8 },
    Advance { ps: u32 },
}

fn op_gen() -> impl Gen<Value = Op> {
    one_of![
        (gen::u32s(1..50_000_000), gen::u8s(1..5), gen::u8s(0..4))
            .map(|(bytes, weight, cap)| Op::Start { bytes, weight, cap }),
        gen::u32s(1..50_000_000).map(|ps| Op::Advance { ps }),
    ]
}

testkit::prop! {
    cases = 128;

    /// Total bytes credited to flows never exceed capacity × elapsed time,
    /// and every started byte is eventually delivered exactly once.
    fn conservation_and_exact_delivery(ops in gen::vecs(op_gen(), 1..60)) {
        let capacity = 1e9; // 1 GB/s
        let mut r = FluidResource::new("prop", capacity);
        let mut now = Time::ZERO;
        let mut started: f64 = 0.0;
        let mut token = 0u64;
        let mut completed = 0usize;
        let mut flows_started = 0usize;

        for op in &ops {
            match *op {
                Op::Start { bytes, weight, cap } => {
                    let mut spec = FlowSpec::new().weight(weight as f64);
                    if cap > 0 {
                        spec = spec.rate_cap(cap as f64 * 2e8);
                    }
                    r.start_flow(now, bytes as f64, spec, token);
                    started += bytes as f64;
                    token += 1;
                    flows_started += 1;
                }
                Op::Advance { ps } => {
                    now += Time::from_ps(ps as u64);
                    r.sync(now);
                }
            }
            completed += r.take_completed().len();
            // Allocated rate never exceeds capacity.
            let alloc = r.allocated_rate();
            assert!(alloc <= capacity * (1.0 + 1e-9), "over-allocated {alloc}");
            // Work conservation: if any uncapped backlog exists, the full
            // capacity is in use. (All caps here are ≥ 0.2 GB/s, so with ≥5
            // active flows the sum of caps exceeds capacity.)
            if r.active_flows() >= 5 {
                assert!(alloc >= capacity * (1.0 - 1e-9), "under-allocated {alloc}");
            }
            // Bytes moved so far cannot exceed capacity × time.
            let moved = r.total_bytes();
            let budget = capacity * now.as_secs() + 1.0;
            assert!(moved <= budget, "moved {moved} > budget {budget}");
            assert!(moved <= started + 1.0, "moved more than started");
        }

        // Drain: run the resource dry and check every flow completed.
        let mut guard = 0;
        while let Some(at) = r.next_wake() {
            r.sync(at);
            completed += r.take_completed().len();
            guard += 1;
            assert!(guard < 10_000, "resource failed to drain");
        }
        assert_eq!(completed, flows_started, "every flow completes exactly once");
        // And all started bytes were delivered (within rounding slack).
        assert!((r.total_bytes() - started).abs() < flows_started as f64 + 1.0);
    }

    /// Weighted shares: two persistent flows with weights w1:w2 receive
    /// rates in exactly that proportion.
    fn weighted_shares_exact(w1 in gen::u8s(1..10), w2 in gen::u8s(1..10)) {
        let mut r = FluidResource::new("w", 10e9);
        let a = r.start_flow(Time::ZERO, f64::INFINITY, FlowSpec::new().weight(w1 as f64), 1);
        let b = r.start_flow(Time::ZERO, f64::INFINITY, FlowSpec::new().weight(w2 as f64), 2);
        let ra = r.flow_rate(a);
        let rb = r.flow_rate(b);
        let expect = w1 as f64 / w2 as f64;
        assert!((ra / rb - expect).abs() < 1e-9, "{ra} {rb}");
        assert!((ra + rb - 10e9).abs() < 1.0);
    }
}
