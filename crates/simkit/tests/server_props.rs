//! Property tests for the k-server FIFO pool.

use simkit::{ServerPool, Time};
use std::collections::BinaryHeap;
use testkit::gen;

testkit::prop! {
    cases = 128;

    /// Under any arrival pattern: at most `k` jobs in service, FIFO start
    /// order, every job completes exactly once, and busy time equals the
    /// sum of service times.
    fn pool_invariants(
        servers in gen::usizes(1..6),
        jobs in gen::vecs((gen::u64s(1..10_000), gen::u64s(0..5_000)), 1..60),
    ) {
        let mut pool = ServerPool::new("prop", servers);
        // (finish_at_ps, token) of jobs currently in service.
        let mut in_service: BinaryHeap<std::cmp::Reverse<(u64, u64)>> = BinaryHeap::new();
        let mut now = Time::ZERO;
        let mut started = Vec::new();
        let mut total_service = Time::ZERO;

        let drain_until = |t: Time,
                               pool: &mut ServerPool,
                               in_service: &mut BinaryHeap<std::cmp::Reverse<(u64, u64)>>,
                               started: &mut Vec<u64>| {
            while let Some(&std::cmp::Reverse((at, _))) = in_service.peek() {
                if Time::from_ps(at) > t {
                    break;
                }
                in_service.pop();
                if let Some(next) = pool.complete(Time::from_ps(at)) {
                    started.push(next.token);
                    in_service.push(std::cmp::Reverse((next.finish_at.as_ps(), next.token)));
                }
            }
        };

        for (i, (service_ns, gap_ns)) in jobs.iter().enumerate() {
            now += Time::from_ps(gap_ns * 1000);
            drain_until(now, &mut pool, &mut in_service, &mut started);
            let service = Time::from_ps(service_ns * 1000);
            total_service += service;
            if let Some(js) = pool.submit(now, service, i as u64) {
                started.push(js.token);
                in_service.push(std::cmp::Reverse((js.finish_at.as_ps(), js.token)));
            }
            assert!(pool.busy() <= servers);
            assert_eq!(in_service.len(), pool.busy());
        }
        // Drain everything.
        drain_until(Time::MAX, &mut pool, &mut in_service, &mut started);
        assert_eq!(pool.jobs_done() as usize, jobs.len(), "exactly once");
        assert_eq!(pool.busy(), 0);
        assert_eq!(pool.queued(), 0);
        // FIFO: tokens start in submission order.
        let mut sorted = started.clone();
        sorted.sort_unstable();
        assert_eq!(&started, &sorted, "FIFO start order");
        assert_eq!(pool.busy_time(), total_service);
    }
}
