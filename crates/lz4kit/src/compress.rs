//! LZ4 block-format compressors.
//!
//! Two match finders are provided behind [`Level`]:
//!
//! * [`Level::Fast`] — single-probe hash table, greedy parse. This mirrors
//!   the reference `LZ4_compress_default` strategy and is what the paper's
//!   software baseline (`LZ4 library`) and hardware engines implement.
//! * [`Level::High`] — hash-chain match finder with a configurable search
//!   depth, trading compression time for ratio, standing in for `LZ4-HC`.
//!   The paper notes the middle tier may "compress with more computing time
//!   (thus a better compression ratio)" for latency-tolerant traffic; this
//!   level is that knob.
//!
//! Both produce standard LZ4 *block* streams decodable by
//! [`decompress`](crate::decompress) (and by the reference decoder: token /
//! literals / little-endian 16-bit offset / match-length encoding, final
//! sequence is literals-only, last 5 bytes are literals, matches start at
//! least 12 bytes before the end).

use crate::error::CompressError;

/// Minimum match length representable by the format.
const MIN_MATCH: usize = 4;
/// A match may not start closer than this to the end of the block.
const MF_LIMIT: usize = 12;
/// The final bytes of every block are always literals.
const LAST_LITERALS: usize = 5;
/// Maximum match offset (16-bit field).
const MAX_OFFSET: usize = 65_535;

const HASH_LOG: u32 = 16;
const CHAIN_HASH_LOG: u32 = 15;

/// Compression effort level.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
#[derive(Default)]
pub enum Level {
    /// Greedy single-probe parse (reference `LZ4` speed class).
    #[default]
    Fast,
    /// Hash-chain search visiting up to `depth` previous candidates per
    /// position (reference `LZ4-HC` class). `High(1)` ≈ `Fast` with chains;
    /// `High(64)` approaches optimal for 4 KiB blocks.
    High(u8),
}


/// Worst-case compressed size for `n` input bytes.
///
/// Matches the reference `LZ4_compressBound`: incompressible data expands by
/// 1 byte per 255 plus a small constant.
///
/// ```
/// assert_eq!(lz4kit::compress_bound(0), 16);
/// assert!(lz4kit::compress_bound(4096) >= 4096 + 16);
/// ```
pub const fn compress_bound(n: usize) -> usize {
    n + n / 255 + 16
}

#[inline]
fn read_u32(src: &[u8], i: usize) -> u32 {
    u32::from_le_bytes([src[i], src[i + 1], src[i + 2], src[i + 3]])
}

#[inline]
fn hash4(v: u32, bits: u32) -> usize {
    (v.wrapping_mul(2_654_435_761) >> (32 - bits)) as usize
}

/// Number of matching bytes between `src[a..]` and `src[b..]`, stopping at
/// `limit` (exclusive, measured on `b`).
#[inline]
fn common_len(src: &[u8], mut a: usize, mut b: usize, limit: usize) -> usize {
    let start = b;
    while b < limit && src[a] == src[b] {
        a += 1;
        b += 1;
    }
    b - start
}

struct Writer<'a> {
    dst: &'a mut [u8],
    pos: usize,
}

impl<'a> Writer<'a> {
    fn new(dst: &'a mut [u8]) -> Self {
        Writer { dst, pos: 0 }
    }

    #[inline]
    fn push(&mut self, b: u8) -> Result<(), CompressError> {
        if self.pos >= self.dst.len() {
            return Err(CompressError::OutputTooSmall {
                capacity: self.dst.len(),
            });
        }
        self.dst[self.pos] = b;
        self.pos += 1;
        Ok(())
    }

    #[inline]
    fn extend(&mut self, bytes: &[u8]) -> Result<(), CompressError> {
        if self.pos + bytes.len() > self.dst.len() {
            return Err(CompressError::OutputTooSmall {
                capacity: self.dst.len(),
            });
        }
        self.dst[self.pos..self.pos + bytes.len()].copy_from_slice(bytes);
        self.pos += bytes.len();
        Ok(())
    }

    /// Emits one sequence: token, literal length extension, literals, and —
    /// unless this is the final literals-only sequence — offset and match
    /// length extension.
    fn sequence(
        &mut self,
        literals: &[u8],
        m: Option<(usize, usize)>, // (offset, match_len)
    ) -> Result<(), CompressError> {
        let lit_len = literals.len();
        let ml_code = match m {
            Some((_, ml)) => {
                debug_assert!(ml >= MIN_MATCH);
                ml - MIN_MATCH
            }
            None => 0,
        };
        let token = (if lit_len >= 15 { 15 } else { lit_len as u8 }) << 4
            | (if ml_code >= 15 { 15 } else { ml_code as u8 });
        self.push(token)?;
        if lit_len >= 15 {
            let mut rest = lit_len - 15;
            while rest >= 255 {
                self.push(255)?;
                rest -= 255;
            }
            self.push(rest as u8)?;
        }
        self.extend(literals)?;
        if let Some((offset, _)) = m {
            debug_assert!((1..=MAX_OFFSET).contains(&offset));
            self.push((offset & 0xFF) as u8)?;
            self.push((offset >> 8) as u8)?;
            if ml_code >= 15 {
                let mut rest = ml_code - 15;
                while rest >= 255 {
                    self.push(255)?;
                    rest -= 255;
                }
                self.push(rest as u8)?;
            }
        }
        Ok(())
    }
}

/// Compresses `src` into `dst`, returning the compressed length.
///
/// # Errors
///
/// Returns [`CompressError::OutputTooSmall`] if `dst` is shorter than the
/// stream requires; a `dst` of [`compress_bound`]`(src.len())` bytes never
/// fails.
///
/// # Examples
///
/// ```
/// let src = b"hello hello hello hello hello!";
/// let mut dst = vec![0u8; lz4kit::compress_bound(src.len())];
/// let n = lz4kit::compress_into(src, &mut dst, lz4kit::Level::Fast)?;
/// assert!(n < src.len());
/// # Ok::<(), lz4kit::CompressError>(())
/// ```
pub fn compress_into(src: &[u8], dst: &mut [u8], level: Level) -> Result<usize, CompressError> {
    let mut w = Writer::new(dst);
    match level {
        Level::Fast => compress_fast(src, &mut w)?,
        Level::High(depth) => compress_hc(src, depth.max(1) as usize, &mut w)?,
    }
    Ok(w.pos)
}

/// Compresses `src` into a fresh buffer at the given level.
///
/// # Examples
///
/// ```
/// let data = vec![7u8; 4096];
/// let packed = lz4kit::compress_with(&data, lz4kit::Level::Fast);
/// assert!(packed.len() < 64);
/// let back = lz4kit::decompress_exact(&packed, 4096)?;
/// assert_eq!(back, data);
/// # Ok::<(), lz4kit::DecompressError>(())
/// ```
pub fn compress_with(src: &[u8], level: Level) -> Vec<u8> {
    let mut dst = vec![0u8; compress_bound(src.len())];
    let n = compress_into(src, &mut dst, level)
        .expect("compress_bound-sized destination cannot overflow");
    dst.truncate(n);
    dst
}

/// Compresses at the default [`Level::Fast`].
///
/// # Examples
///
/// ```
/// let packed = lz4kit::compress(b"aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa");
/// assert!(packed.len() < 32);
/// ```
pub fn compress(src: &[u8]) -> Vec<u8> {
    compress_with(src, Level::Fast)
}

/// Greedy single-probe compressor (reference-`LZ4` class).
fn compress_fast(src: &[u8], w: &mut Writer<'_>) -> Result<(), CompressError> {
    compress_fast_from(src, 0, w)
}

/// Greedy compressor over `src[start..]`, with `src[..start]` usable as a
/// match dictionary (the streaming/dictionary mode).
fn compress_fast_from(src: &[u8], start: usize, w: &mut Writer<'_>) -> Result<(), CompressError> {
    if src.len() < start + MF_LIMIT + 1 {
        return w.sequence(&src[start..], None);
    }
    let match_start_limit = src.len() - MF_LIMIT;
    let match_end_limit = src.len() - LAST_LITERALS;
    let mut table = vec![0u32; 1 << HASH_LOG]; // position + 1; 0 = empty
    // Index the dictionary so matches can reach back into it.
    if start >= MIN_MATCH {
        let from = start.saturating_sub(MAX_OFFSET);
        for pos in from..=(start - MIN_MATCH).min(match_start_limit.saturating_sub(1)) {
            table[hash4(read_u32(src, pos), HASH_LOG)] = (pos + 1) as u32;
        }
    }
    let mut anchor = start;
    let mut i = start;
    // Acceleration: skip faster through incompressible regions, as the
    // reference implementation does.
    let mut misses = 0usize;

    while i < match_start_limit {
        let h = hash4(read_u32(src, i), HASH_LOG);
        let cand = table[h] as usize;
        table[h] = (i + 1) as u32;
        let found = cand != 0
            && i + 1 - cand <= MAX_OFFSET
            && read_u32(src, cand - 1) == read_u32(src, i);
        if !found {
            misses += 1;
            i += 1 + (misses >> 6);
            continue;
        }
        misses = 0;
        let mut j = cand - 1;
        let mut mlen = MIN_MATCH + common_len(src, j + MIN_MATCH, i + MIN_MATCH, match_end_limit);
        // Extend backwards over pending literals.
        while i > anchor && j > 0 && src[i - 1] == src[j - 1] {
            i -= 1;
            j -= 1;
            mlen += 1;
        }
        w.sequence(&src[anchor..i], Some((i - j, mlen)))?;
        i += mlen;
        anchor = i;
        if i < match_start_limit {
            // Index the position two back to improve the next search,
            // mirroring the reference's post-match insertions.
            let back = i - 2;
            table[hash4(read_u32(src, back), HASH_LOG)] = (back + 1) as u32;
        }
    }
    w.sequence(&src[anchor..], None)
}

/// Hash-chain compressor with bounded search depth (reference-`LZ4-HC`
/// class).
fn compress_hc(src: &[u8], depth: usize, w: &mut Writer<'_>) -> Result<(), CompressError> {
    if src.len() < MF_LIMIT + 1 {
        return w.sequence(src, None);
    }
    let match_start_limit = src.len() - MF_LIMIT;
    let match_end_limit = src.len() - LAST_LITERALS;
    let mut head = vec![0u32; 1 << CHAIN_HASH_LOG]; // position + 1
    let mut prev = vec![0u32; src.len()]; // previous same-hash position + 1
    let mut anchor = 0usize;
    let mut i = 0usize;

    let insert = |head: &mut [u32], prev: &mut [u32], pos: usize, src: &[u8]| {
        let h = hash4(read_u32(src, pos), CHAIN_HASH_LOG);
        prev[pos] = head[h];
        head[h] = (pos + 1) as u32;
    };

    let best_match = |head: &[u32], prev: &[u32], pos: usize| -> Option<(usize, usize)> {
        let h = hash4(read_u32(src, pos), CHAIN_HASH_LOG);
        let mut cand = head[h] as usize;
        let mut best: Option<(usize, usize)> = None;
        let mut probes = depth;
        while cand != 0 && probes > 0 {
            let c = cand - 1;
            if pos - c > MAX_OFFSET {
                break;
            }
            if read_u32(src, c) == read_u32(src, pos) {
                let len =
                    MIN_MATCH + common_len(src, c + MIN_MATCH, pos + MIN_MATCH, match_end_limit);
                if best.is_none_or(|(_, bl)| len > bl) {
                    best = Some((c, len));
                }
            }
            cand = prev[c] as usize;
            probes -= 1;
        }
        best
    };

    while i < match_start_limit {
        let found = best_match(&head, &prev, i);
        insert(&mut head, &mut prev, i, src);
        let Some((mut j, mut mlen)) = found else {
            i += 1;
            continue;
        };
        let mut start = i;
        while start > anchor && j > 0 && src[start - 1] == src[j - 1] {
            start -= 1;
            j -= 1;
            mlen += 1;
        }
        w.sequence(&src[anchor..start], Some((start - j, mlen)))?;
        // Index every covered position so later matches can reach back here.
        let stop = (start + mlen).min(match_start_limit);
        let mut k = i + 1;
        while k < stop {
            insert(&mut head, &mut prev, k, src);
            k += 1;
        }
        i = start + mlen;
        anchor = i;
    }
    w.sequence(&src[anchor..], None)
}

/// Compresses `src` with `dict` as preceding history: matches may reference
/// the final 64 KiB of `dict`, exactly like the reference library's
/// streaming mode. The output decodes with
/// [`decompress_with_dict`](crate::decompress_with_dict) given the same
/// dictionary.
///
/// # Examples
///
/// ```
/// let dict = b"the quick brown fox jumps over the lazy dog ".repeat(10);
/// let block = b"the quick brown fox naps";
/// let with = lz4kit::compress_with_dict(&dict, block);
/// let without = lz4kit::compress(block);
/// assert!(with.len() < without.len(), "history pays off");
/// let back = lz4kit::decompress_with_dict(&dict, &with, block.len())?;
/// assert_eq!(back, block);
/// # Ok::<(), lz4kit::DecompressError>(())
/// ```
pub fn compress_with_dict(dict: &[u8], src: &[u8]) -> Vec<u8> {
    // Only the last MAX_OFFSET bytes of history are reachable.
    let dict = &dict[dict.len().saturating_sub(MAX_OFFSET)..];
    let mut buf = Vec::with_capacity(dict.len() + src.len());
    buf.extend_from_slice(dict);
    buf.extend_from_slice(src);
    let mut dst = vec![0u8; compress_bound(src.len())];
    let mut w = Writer::new(&mut dst);
    compress_fast_from(&buf, dict.len(), &mut w)
        .expect("compress_bound-sized destination cannot overflow");
    let n = w.pos;
    dst.truncate(n);
    dst
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decompress::decompress_exact;

    fn roundtrip(data: &[u8], level: Level) -> usize {
        let packed = compress_with(data, level);
        let back = decompress_exact(&packed, data.len()).expect("decodes");
        assert_eq!(back, data, "roundtrip mismatch at level {level:?}");
        packed.len()
    }

    #[test]
    fn empty_input() {
        assert_eq!(roundtrip(b"", Level::Fast), 1);
        assert_eq!(roundtrip(b"", Level::High(8)), 1);
    }

    #[test]
    fn tiny_inputs_are_literal_only() {
        for n in 1..=13 {
            let data: Vec<u8> = (0..n as u8).collect();
            roundtrip(&data, Level::Fast);
            roundtrip(&data, Level::High(8));
        }
    }

    #[test]
    fn highly_repetitive_compresses_hard() {
        let data = vec![0xAB; 4096];
        let n = roundtrip(&data, Level::Fast);
        assert!(n < 40, "4 KiB of one byte should shrink to <40 B, got {n}");
    }

    #[test]
    fn random_data_expands_within_bound() {
        let mut x = 0x12345678u64;
        let data: Vec<u8> = (0..4096)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x as u8
            })
            .collect();
        let n = roundtrip(&data, Level::Fast);
        assert!(n <= compress_bound(data.len()));
        assert!(n >= data.len(), "random data should not compress");
    }

    #[test]
    fn text_like_data_ratio_reasonable() {
        let sentence = b"the quick brown fox jumps over the lazy dog. ";
        let data: Vec<u8> = sentence.iter().cycle().take(4096).copied().collect();
        let n = roundtrip(&data, Level::Fast);
        assert!(
            (n as f64) < 0.2 * data.len() as f64,
            "cyclic text should compress >5x, got {n}"
        );
    }

    #[test]
    fn hc_never_worse_than_fast_on_structured_data() {
        let mut data = Vec::new();
        for i in 0u32..512 {
            data.extend_from_slice(&(i / 7).to_le_bytes());
            data.extend_from_slice(b"row:");
        }
        let fast = roundtrip(&data, Level::Fast);
        let high = roundtrip(&data, Level::High(64));
        assert!(high <= fast, "HC {high} should be <= Fast {fast}");
    }

    #[test]
    fn long_literal_and_match_extensions() {
        // >15 literals followed by a >19-byte match exercises both length
        // extension paths.
        let mut data: Vec<u8> = (0..100).map(|i| (i * 37) as u8).collect();
        let window = data.clone();
        data.extend_from_slice(&window); // long match at offset 100
        data.extend_from_slice(&[9; 40]);
        roundtrip(&data, Level::Fast);
        roundtrip(&data, Level::High(16));
    }

    #[test]
    fn output_too_small_is_reported() {
        let data = vec![1u8; 1000];
        let mut dst = vec![0u8; 4];
        let err = compress_into(&data, &mut dst, Level::Fast).unwrap_err();
        assert_eq!(err, CompressError::OutputTooSmall { capacity: 4 });
    }

    #[test]
    fn bound_is_sufficient_for_adversarial_sizes() {
        for n in [0, 1, 14, 15, 16, 255, 256, 4095, 4096, 70_000] {
            let data: Vec<u8> = (0..n).map(|i| (i % 251) as u8).collect();
            let packed = compress_with(&data, Level::Fast);
            assert!(packed.len() <= compress_bound(n), "n={n}");
            roundtrip(&data, Level::Fast);
        }
    }

    #[test]
    fn offsets_near_u16_max_work() {
        // A match whose source sits ~65 KiB back.
        let mut data = vec![0u8; 70_000];
        for (i, b) in data.iter_mut().enumerate() {
            *b = (i % 256) as u8; // periodic ⇒ matches at many offsets
        }
        roundtrip(&data, Level::Fast);
        roundtrip(&data, Level::High(4));
    }
}
