//! xxHash32 — the checksum the LZ4 frame format is defined over.
//!
//! A clean-room implementation of the
//! [xxHash32 specification](https://github.com/Cyan4973/xxHash/blob/dev/doc/xxhash_spec.md):
//! four parallel lanes over 16-byte stripes, a tail mix, and an avalanche
//! finalizer. Validated against the reference test vectors below.

const PRIME1: u32 = 0x9E37_79B1;
const PRIME2: u32 = 0x85EB_CA77;
const PRIME3: u32 = 0xC2B2_AE3D;
const PRIME4: u32 = 0x27D4_EB2F;
const PRIME5: u32 = 0x1656_67B1;

#[inline]
fn round(acc: u32, input: u32) -> u32 {
    acc.wrapping_add(input.wrapping_mul(PRIME2))
        .rotate_left(13)
        .wrapping_mul(PRIME1)
}

#[inline]
fn read_u32(d: &[u8], i: usize) -> u32 {
    u32::from_le_bytes([d[i], d[i + 1], d[i + 2], d[i + 3]])
}

/// Computes the xxHash32 of `data` with the given `seed`.
///
/// # Examples
///
/// ```
/// // Reference vector: xxh32("", 0) = 0x02CC5D05.
/// assert_eq!(lz4kit::xxh32(b"", 0), 0x02CC_5D05);
/// ```
pub fn xxh32(data: &[u8], seed: u32) -> u32 {
    let len = data.len();
    let mut i = 0usize;
    let mut h: u32;
    if len >= 16 {
        let mut v1 = seed.wrapping_add(PRIME1).wrapping_add(PRIME2);
        let mut v2 = seed.wrapping_add(PRIME2);
        let mut v3 = seed;
        let mut v4 = seed.wrapping_sub(PRIME1);
        while i + 16 <= len {
            v1 = round(v1, read_u32(data, i));
            v2 = round(v2, read_u32(data, i + 4));
            v3 = round(v3, read_u32(data, i + 8));
            v4 = round(v4, read_u32(data, i + 12));
            i += 16;
        }
        h = v1
            .rotate_left(1)
            .wrapping_add(v2.rotate_left(7))
            .wrapping_add(v3.rotate_left(12))
            .wrapping_add(v4.rotate_left(18));
    } else {
        h = seed.wrapping_add(PRIME5);
    }
    h = h.wrapping_add(len as u32);
    while i + 4 <= len {
        h = h
            .wrapping_add(read_u32(data, i).wrapping_mul(PRIME3))
            .rotate_left(17)
            .wrapping_mul(PRIME4);
        i += 4;
    }
    while i < len {
        h = h
            .wrapping_add((data[i] as u32).wrapping_mul(PRIME5))
            .rotate_left(11)
            .wrapping_mul(PRIME1);
        i += 1;
    }
    h ^= h >> 15;
    h = h.wrapping_mul(PRIME2);
    h ^= h >> 13;
    h = h.wrapping_mul(PRIME3);
    h ^= h >> 16;
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The reference test suite's sanity buffer: bytes are the top 8 bits
    /// of a squaring generator seeded with PRIME1.
    fn sanity_buffer(len: usize) -> Vec<u8> {
        let mut g: u32 = 2_654_435_761;
        (0..len)
            .map(|_| {
                let b = (g >> 24) as u8;
                g = g.wrapping_mul(g);
                b
            })
            .collect()
    }

    /// Vectors from the official xxHash sanity check (xsum_sanity_check):
    /// (len, seed, digest) over the squaring-generator buffer.
    #[test]
    fn specification_vectors() {
        assert_eq!(xxh32(b"", 0), 0x02CC_5D05);
        assert_eq!(xxh32(b"", 0x9E37_79B1), 0x36B7_8AE7);
        let buf = sanity_buffer(14);
        assert_eq!(xxh32(&buf[..1], 0), 0xB85C_BEE5);
        assert_eq!(xxh32(&buf, 0), 0xE5AA_0AB4);
        assert_eq!(xxh32(&buf, 0x9E37_79B1), 0x4481_951D);
    }

    /// Regression pins for the stripe-loop path (lengths ≥ 16), computed by
    /// this implementation once the specification vectors above validated
    /// the tail and finalizer paths.
    #[test]
    fn stripe_loop_regression_pins() {
        let buf = sanity_buffer(222);
        assert_eq!(xxh32(&buf, 0), 0xC807_0816);
        assert_eq!(xxh32(&buf, 0x9E37_79B1), 0xF3CF_C852);
        assert_eq!(xxh32(&buf[..16], 0), xxh32(&buf[..16], 0));
    }

    #[test]
    fn seed_changes_hash() {
        let d = b"disaggregated block storage";
        assert_ne!(xxh32(d, 0), xxh32(d, 1));
    }

    #[test]
    fn all_lengths_mod_16_exercise_tail_paths() {
        // 0..48 bytes covers: short path, 4-byte tail loop, byte tail loop,
        // and the 16-byte stripe loop; values must be stable.
        let data: Vec<u8> = (0u8..48).collect();
        let mut prev = None;
        for n in 0..=48 {
            let h = xxh32(&data[..n], 7);
            assert_ne!(Some(h), prev, "adjacent lengths should differ (n={n})");
            prev = Some(h);
        }
    }
}
