//! The LZ4 **frame** format (`.lz4` container).
//!
//! While the middle tier stores raw blocks, tooling and cold storage use the
//! self-describing [frame format](https://github.com/lz4/lz4/blob/dev/doc/lz4_Frame_format.md):
//! magic number, a descriptor with feature flags, a sequence of size-prefixed
//! blocks (each independently compressed or stored raw), an end mark, and
//! xxHash32 integrity checksums. This module implements the writer and a
//! fully validated reader for block-independent frames.
//!
//! # Examples
//!
//! ```
//! use lz4kit::frame::{compress_frame, decompress_frame, FrameOptions};
//!
//! let data = b"frame me ".repeat(1000);
//! let frame = compress_frame(&data, &FrameOptions::default());
//! assert_eq!(decompress_frame(&frame)?, data);
//! # Ok::<(), lz4kit::frame::FrameError>(())
//! ```

use crate::compress::{compress_with, Level};
use crate::decompress::decompress;
use crate::xxhash::xxh32;
use std::error::Error;
use std::fmt;

/// Frame magic number (little endian on the wire).
pub const MAGIC: u32 = 0x184D_2204;

/// Maximum block size selector (the BD byte's table).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum BlockMaxSize {
    /// 64 KiB blocks.
    Max64KiB,
    /// 256 KiB blocks.
    Max256KiB,
    /// 1 MiB blocks.
    Max1MiB,
    /// 4 MiB blocks.
    Max4MiB,
}

impl BlockMaxSize {
    fn code(self) -> u8 {
        match self {
            BlockMaxSize::Max64KiB => 4,
            BlockMaxSize::Max256KiB => 5,
            BlockMaxSize::Max1MiB => 6,
            BlockMaxSize::Max4MiB => 7,
        }
    }

    fn from_code(code: u8) -> Option<Self> {
        Some(match code {
            4 => BlockMaxSize::Max64KiB,
            5 => BlockMaxSize::Max256KiB,
            6 => BlockMaxSize::Max1MiB,
            7 => BlockMaxSize::Max4MiB,
            _ => return None,
        })
    }

    /// The block size in bytes.
    pub fn bytes(self) -> usize {
        match self {
            BlockMaxSize::Max64KiB => 64 << 10,
            BlockMaxSize::Max256KiB => 256 << 10,
            BlockMaxSize::Max1MiB => 1 << 20,
            BlockMaxSize::Max4MiB => 4 << 20,
        }
    }
}

/// Options for frame compression.
#[derive(Copy, Clone, Debug)]
pub struct FrameOptions {
    /// Compression level for each block.
    pub level: Level,
    /// Maximum block size.
    pub block_max: BlockMaxSize,
    /// Append a per-block xxHash32.
    pub block_checksums: bool,
    /// Append a whole-content xxHash32.
    pub content_checksum: bool,
    /// Record the decompressed size in the header.
    pub content_size: bool,
}

impl Default for FrameOptions {
    fn default() -> Self {
        FrameOptions {
            level: Level::Fast,
            block_max: BlockMaxSize::Max64KiB,
            block_checksums: false,
            content_checksum: true,
            content_size: true,
        }
    }
}

/// Errors from frame decoding.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// Input does not start with the LZ4 frame magic.
    BadMagic,
    /// Frame ends mid-field.
    Truncated,
    /// Unsupported version or reserved bits set.
    UnsupportedFlags,
    /// Invalid block-max-size code.
    BadBlockSizeCode(u8),
    /// Header checksum mismatch.
    HeaderChecksum,
    /// A block exceeds the declared maximum size.
    OversizedBlock {
        /// Declared size of the offending block.
        got: usize,
        /// Frame's maximum block size.
        max: usize,
    },
    /// A block failed to decompress.
    BadBlock,
    /// Per-block checksum mismatch.
    BlockChecksum,
    /// Content checksum mismatch.
    ContentChecksum,
    /// Decoded size differs from the header's content size.
    ContentSize {
        /// Size the header declared.
        declared: u64,
        /// Size actually decoded.
        actual: u64,
    },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::BadMagic => write!(f, "not an LZ4 frame (bad magic)"),
            FrameError::Truncated => write!(f, "frame is truncated"),
            FrameError::UnsupportedFlags => write!(f, "unsupported frame flags or version"),
            FrameError::BadBlockSizeCode(c) => write!(f, "invalid block max-size code {c}"),
            FrameError::HeaderChecksum => write!(f, "frame header checksum mismatch"),
            FrameError::OversizedBlock { got, max } => {
                write!(f, "block of {got} bytes exceeds frame maximum {max}")
            }
            FrameError::BadBlock => write!(f, "block failed to decompress"),
            FrameError::BlockChecksum => write!(f, "block checksum mismatch"),
            FrameError::ContentChecksum => write!(f, "content checksum mismatch"),
            FrameError::ContentSize { declared, actual } => {
                write!(f, "content size mismatch: declared {declared}, decoded {actual}")
            }
        }
    }
}

impl Error for FrameError {}

/// Compresses `data` into a complete LZ4 frame.
pub fn compress_frame(data: &[u8], opts: &FrameOptions) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 2 + 64);
    out.extend_from_slice(&MAGIC.to_le_bytes());
    // FLG: version 01, block-independent, optional checksums/size.
    let mut flg = 0b0100_0000u8 | 0b0010_0000; // version + B.Indep
    if opts.block_checksums {
        flg |= 0b0001_0000;
    }
    if opts.content_size {
        flg |= 0b0000_1000;
    }
    if opts.content_checksum {
        flg |= 0b0000_0100;
    }
    let bd = opts.block_max.code() << 4;
    let header_start = out.len();
    out.push(flg);
    out.push(bd);
    if opts.content_size {
        out.extend_from_slice(&(data.len() as u64).to_le_bytes());
    }
    let hc = (xxh32(&out[header_start..], 0) >> 8) as u8;
    out.push(hc);

    for chunk in data.chunks(opts.block_max.bytes()) {
        let packed = compress_with(chunk, opts.level);
        // The frame format stores a block raw when compression does not
        // shrink it (high bit of the size word set).
        let (payload, raw): (&[u8], bool) = if packed.len() < chunk.len() {
            (&packed, false)
        } else {
            (chunk, true)
        };
        let size = payload.len() as u32 | if raw { 0x8000_0000 } else { 0 };
        out.extend_from_slice(&size.to_le_bytes());
        out.extend_from_slice(payload);
        if opts.block_checksums {
            out.extend_from_slice(&xxh32(payload, 0).to_le_bytes());
        }
    }
    // EndMark.
    out.extend_from_slice(&0u32.to_le_bytes());
    if opts.content_checksum {
        out.extend_from_slice(&xxh32(data, 0).to_le_bytes());
    }
    out
}

struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn u8(&mut self) -> Result<u8, FrameError> {
        let b = *self.data.get(self.pos).ok_or(FrameError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    fn u32(&mut self) -> Result<u32, FrameError> {
        if self.pos + 4 > self.data.len() {
            return Err(FrameError::Truncated);
        }
        let v = u32::from_le_bytes(self.data[self.pos..self.pos + 4].try_into().unwrap());
        self.pos += 4;
        Ok(v)
    }

    fn u64(&mut self) -> Result<u64, FrameError> {
        if self.pos + 8 > self.data.len() {
            return Err(FrameError::Truncated);
        }
        let v = u64::from_le_bytes(self.data[self.pos..self.pos + 8].try_into().unwrap());
        self.pos += 8;
        Ok(v)
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8], FrameError> {
        if self.pos + n > self.data.len() {
            return Err(FrameError::Truncated);
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
}

/// Decompresses a complete LZ4 frame, validating every checksum present.
///
/// # Errors
///
/// Returns a [`FrameError`] describing the first violation found.
pub fn decompress_frame(frame: &[u8]) -> Result<Vec<u8>, FrameError> {
    let mut r = Reader {
        data: frame,
        pos: 0,
    };
    if r.u32()? != MAGIC {
        return Err(FrameError::BadMagic);
    }
    let header_start = r.pos;
    let flg = r.u8()?;
    if flg >> 6 != 0b01 {
        return Err(FrameError::UnsupportedFlags);
    }
    if flg & 0b0000_0011 != 0 {
        // Reserved bit or DictID (unsupported here).
        return Err(FrameError::UnsupportedFlags);
    }
    let block_checksums = flg & 0b0001_0000 != 0;
    let has_content_size = flg & 0b0000_1000 != 0;
    let has_content_checksum = flg & 0b0000_0100 != 0;
    let bd = r.u8()?;
    let block_max = BlockMaxSize::from_code((bd >> 4) & 0x7)
        .ok_or(FrameError::BadBlockSizeCode((bd >> 4) & 0x7))?;
    let content_size = if has_content_size { Some(r.u64()?) } else { None };
    let header_end = r.pos;
    let hc = r.u8()?;
    if (xxh32(&frame[header_start..header_end], 0) >> 8) as u8 != hc {
        return Err(FrameError::HeaderChecksum);
    }

    let mut out = Vec::with_capacity(content_size.unwrap_or(0) as usize);
    loop {
        let size_word = r.u32()?;
        if size_word == 0 {
            break; // EndMark
        }
        let raw = size_word & 0x8000_0000 != 0;
        let size = (size_word & 0x7FFF_FFFF) as usize;
        if size > block_max.bytes() + 16 {
            return Err(FrameError::OversizedBlock {
                got: size,
                max: block_max.bytes(),
            });
        }
        let payload = r.bytes(size)?;
        if block_checksums {
            let bc = r.u32()?;
            if xxh32(payload, 0) != bc {
                return Err(FrameError::BlockChecksum);
            }
        }
        if raw {
            out.extend_from_slice(payload);
        } else {
            let before = out.len();
            let decoded =
                decompress(payload, block_max.bytes()).map_err(|_| FrameError::BadBlock)?;
            out.extend_from_slice(&decoded);
            debug_assert!(out.len() - before <= block_max.bytes());
        }
    }
    if has_content_checksum {
        let cc = r.u32()?;
        if xxh32(&out, 0) != cc {
            return Err(FrameError::ContentChecksum);
        }
    }
    if let Some(declared) = content_size {
        if declared != out.len() as u64 {
            return Err(FrameError::ContentSize {
                declared,
                actual: out.len() as u64,
            });
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: usize) -> Vec<u8> {
        b"lz4 frame format sample content / "
            .iter()
            .cycle()
            .take(n)
            .copied()
            .collect()
    }

    #[test]
    fn roundtrip_default_options() {
        for n in [0, 1, 100, 65_536, 200_000] {
            let data = sample(n);
            let frame = compress_frame(&data, &FrameOptions::default());
            assert_eq!(decompress_frame(&frame).unwrap(), data, "n={n}");
        }
    }

    #[test]
    fn roundtrip_all_block_sizes_and_checksums() {
        let data = sample(300_000);
        for block_max in [
            BlockMaxSize::Max64KiB,
            BlockMaxSize::Max256KiB,
            BlockMaxSize::Max1MiB,
            BlockMaxSize::Max4MiB,
        ] {
            let opts = FrameOptions {
                block_max,
                block_checksums: true,
                ..FrameOptions::default()
            };
            let frame = compress_frame(&data, &opts);
            assert_eq!(decompress_frame(&frame).unwrap(), data);
        }
    }

    #[test]
    fn incompressible_blocks_are_stored_raw() {
        // Pseudo-random data: frame must not expand by more than headers.
        let mut x = 1u64;
        let data: Vec<u8> = (0..100_000)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                (x >> 33) as u8
            })
            .collect();
        let frame = compress_frame(&data, &FrameOptions::default());
        assert!(frame.len() < data.len() + 64, "overhead {}", frame.len() - data.len());
        assert_eq!(decompress_frame(&frame).unwrap(), data);
    }

    #[test]
    fn corrupted_magic_rejected() {
        let mut frame = compress_frame(&sample(100), &FrameOptions::default());
        frame[0] ^= 1;
        assert_eq!(decompress_frame(&frame), Err(FrameError::BadMagic));
    }

    #[test]
    fn corrupted_header_detected() {
        let mut frame = compress_frame(&sample(100), &FrameOptions::default());
        frame[5] ^= 0x10; // flip a BD bit → header checksum must fail
        let err = decompress_frame(&frame).unwrap_err();
        assert!(
            matches!(err, FrameError::HeaderChecksum | FrameError::BadBlockSizeCode(_)),
            "{err:?}"
        );
    }

    #[test]
    fn corrupted_content_detected_by_content_checksum() {
        let data = sample(50_000);
        let mut frame = compress_frame(&data, &FrameOptions::default());
        // Flip a byte inside the first block's payload.
        let idx = 20;
        frame[idx] ^= 0xFF;
        let err = decompress_frame(&frame).unwrap_err();
        assert!(
            matches!(
                err,
                FrameError::BadBlock | FrameError::ContentChecksum | FrameError::ContentSize { .. }
            ),
            "{err:?}"
        );
    }

    #[test]
    fn corrupted_block_detected_by_block_checksum() {
        let opts = FrameOptions {
            block_checksums: true,
            content_checksum: false,
            content_size: false,
            ..FrameOptions::default()
        };
        let data = sample(10_000);
        let mut frame = compress_frame(&data, &opts);
        frame[15] ^= 0x01;
        let err = decompress_frame(&frame).unwrap_err();
        assert!(
            matches!(err, FrameError::BlockChecksum | FrameError::BadBlock),
            "{err:?}"
        );
    }

    #[test]
    fn truncation_detected_everywhere() {
        let data = sample(10_000);
        let frame = compress_frame(&data, &FrameOptions::default());
        for cut in [0, 3, 4, 5, 6, 7, 14, frame.len() / 2, frame.len() - 1] {
            let err = decompress_frame(&frame[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    FrameError::Truncated | FrameError::BadMagic | FrameError::ContentSize { .. }
                ),
                "cut={cut}: {err:?}"
            );
        }
    }

    #[test]
    fn hc_level_frames_decode_too() {
        let data = sample(150_000);
        let opts = FrameOptions {
            level: Level::High(32),
            ..FrameOptions::default()
        };
        let frame = compress_frame(&data, &opts);
        let fast = compress_frame(&data, &FrameOptions::default());
        assert!(frame.len() <= fast.len());
        assert_eq!(decompress_frame(&frame).unwrap(), data);
    }
}
