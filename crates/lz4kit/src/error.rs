//! Error types for the codec.

use std::error::Error;
use std::fmt;

/// Error returned when compression cannot proceed.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum CompressError {
    /// Destination buffer is smaller than [`compress_bound`] requires for
    /// this input in the worst case and the compressed stream did not fit.
    ///
    /// [`compress_bound`]: crate::compress_bound
    OutputTooSmall {
        /// Bytes the destination offered.
        capacity: usize,
    },
}

impl fmt::Display for CompressError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompressError::OutputTooSmall { capacity } => {
                write!(f, "compressed output does not fit in {capacity} bytes")
            }
        }
    }
}

impl Error for CompressError {}

/// Error returned when a compressed block cannot be decoded.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum DecompressError {
    /// The stream ended in the middle of a token, length, or offset field.
    TruncatedInput,
    /// A literal run claims more bytes than remain in the stream.
    LiteralOverrun,
    /// A match offset of zero, or one pointing before the output start.
    InvalidOffset {
        /// The offending offset value.
        offset: usize,
        /// Output bytes produced so far.
        produced: usize,
    },
    /// Decoded output would exceed the caller's size limit.
    OutputOverflow {
        /// The caller-imposed limit.
        limit: usize,
    },
    /// Output finished at an unexpected size (for exact-size decoding).
    WrongSize {
        /// Size the caller expected.
        expected: usize,
        /// Size actually produced.
        actual: usize,
    },
}

impl fmt::Display for DecompressError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecompressError::TruncatedInput => write!(f, "compressed stream is truncated"),
            DecompressError::LiteralOverrun => {
                write!(f, "literal run extends past end of compressed stream")
            }
            DecompressError::InvalidOffset { offset, produced } => write!(
                f,
                "match offset {offset} is invalid with {produced} bytes produced"
            ),
            DecompressError::OutputOverflow { limit } => {
                write!(f, "decoded output exceeds limit of {limit} bytes")
            }
            DecompressError::WrongSize { expected, actual } => {
                write!(f, "decoded {actual} bytes, expected exactly {expected}")
            }
        }
    }
}

impl Error for DecompressError {}
