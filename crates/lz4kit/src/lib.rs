//! # lz4kit — a from-scratch LZ4 block codec
//!
//! The SmartDS paper's middle tier exists to run **LZ4 compression** on
//! storage write payloads (and decompression on reads). This crate is a
//! clean-room implementation of the
//! [LZ4 block format](https://github.com/lz4/lz4/blob/dev/doc/lz4_Block_format.md)
//! in 100 % safe Rust:
//!
//! * [`compress`] / [`compress_with`] / [`compress_into`] — greedy
//!   ([`Level::Fast`]) and hash-chain ([`Level::High`]) match finders.
//! * [`decompress`] / [`decompress_exact`] / [`decompress_append`] — fully
//!   bounds-checked decoding with typed errors.
//! * [`compress_bound`] — exact worst-case output size.
//! * [`frame`] — the self-describing `.lz4` frame container with xxHash32
//!   integrity checking ([`xxh32`] is also implemented here, from scratch).
//! * [`ratio`] — convenience used to calibrate the synthetic corpus.
//!
//! The simulated hardware engines and the software baseline in the
//! reproduction both call into this codec, so every byte stored by the
//! simulated storage servers is genuinely compressed and genuinely
//! round-trips.
//!
//! # Example
//!
//! ```
//! use lz4kit::{compress_with, decompress_exact, Level};
//!
//! let block = b"disaggregated block storage ".repeat(146); // one 4 KiB-ish block
//! let packed = compress_with(&block, Level::Fast);
//! assert!(packed.len() * 2 < block.len(), "text compresses at least 2x");
//! let unpacked = decompress_exact(&packed, block.len())?;
//! assert_eq!(unpacked, block);
//! # Ok::<(), lz4kit::DecompressError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod compress;
mod decompress;
mod error;
pub mod frame;
mod xxhash;

pub use compress::{
    compress, compress_bound, compress_into, compress_with, compress_with_dict, Level,
};
pub use decompress::{
    decompress, decompress_append, decompress_append_continuing, decompress_exact,
    decompress_with_dict,
};
pub use error::{CompressError, DecompressError};
pub use xxhash::xxh32;

/// Compression ratio (`original / compressed`) of `src` at `level`.
///
/// Returns 1.0 for empty input. Used when calibrating the synthetic Silesia
/// corpus against the per-file ratios of the real one.
///
/// # Examples
///
/// ```
/// let r = lz4kit::ratio(&vec![0u8; 4096], lz4kit::Level::Fast);
/// assert!(r > 100.0);
/// ```
pub fn ratio(src: &[u8], level: Level) -> f64 {
    if src.is_empty() {
        return 1.0;
    }
    let packed = compress_with(src, level);
    src.len() as f64 / packed.len() as f64
}
