//! Safe, bounds-checked LZ4 block decompression.
//!
//! The decoder is written entirely in safe Rust and validates every field:
//! truncated streams, literal overruns, zero or out-of-range offsets, and
//! output-size violations all produce a typed [`DecompressError`] rather
//! than UB or a panic. Overlapping match copies (offset < length) are
//! handled byte-by-byte, which is what gives LZ4 its run-length behaviour.

use crate::error::DecompressError;

/// Decompresses `src`, appending to `out`, with `limit` as the maximum total
/// output length. Returns the number of bytes appended.
///
/// # Errors
///
/// All malformed-stream conditions return a [`DecompressError`]; `out` may
/// contain partial output in that case.
pub fn decompress_append(
    src: &[u8],
    out: &mut Vec<u8>,
    limit: usize,
) -> Result<usize, DecompressError> {
    decompress_append_inner(src, out, limit, false)
}

/// Like [`decompress_append`], but the bytes already in `out` serve as
/// match history (streaming/dictionary continuation): offsets may reach
/// into them.
///
/// # Errors
///
/// Same as [`decompress_append`].
pub fn decompress_append_continuing(
    src: &[u8],
    out: &mut Vec<u8>,
    limit: usize,
) -> Result<usize, DecompressError> {
    decompress_append_inner(src, out, limit, true)
}

/// Decompresses `src` produced by [`compress_with_dict`](crate::compress_with_dict)
/// with the same dictionary, expecting exactly `expected` output bytes.
///
/// # Errors
///
/// Same conditions as [`decompress_exact`].
pub fn decompress_with_dict(
    dict: &[u8],
    src: &[u8],
    expected: usize,
) -> Result<Vec<u8>, DecompressError> {
    // Offsets only reach 64 KiB back, so seed only that much history.
    let dict = &dict[dict.len().saturating_sub(65_535)..];
    let mut out = Vec::with_capacity(dict.len() + expected);
    out.extend_from_slice(dict);
    let appended = decompress_append_continuing(src, &mut out, dict.len() + expected)?;
    if appended != expected {
        return Err(DecompressError::WrongSize {
            expected,
            actual: appended,
        });
    }
    Ok(out.split_off(dict.len()))
}

fn decompress_append_inner(
    src: &[u8],
    out: &mut Vec<u8>,
    limit: usize,
    history: bool,
) -> Result<usize, DecompressError> {
    let start_len = if history { 0 } else { out.len() };
    let appended_base = out.len();
    let mut ip = 0usize;

    macro_rules! take {
        () => {{
            let b = *src.get(ip).ok_or(DecompressError::TruncatedInput)?;
            ip += 1;
            b
        }};
    }

    loop {
        let token = take!();
        // --- literals ---
        let mut lit_len = (token >> 4) as usize;
        if lit_len == 15 {
            loop {
                let b = take!();
                lit_len += b as usize;
                if b != 255 {
                    break;
                }
            }
        }
        if ip + lit_len > src.len() {
            return Err(DecompressError::LiteralOverrun);
        }
        if out.len() + lit_len > limit {
            return Err(DecompressError::OutputOverflow { limit });
        }
        out.extend_from_slice(&src[ip..ip + lit_len]);
        ip += lit_len;
        if ip == src.len() {
            // Final sequence: literals only.
            return Ok(out.len() - appended_base);
        }
        // --- match ---
        if ip + 2 > src.len() {
            return Err(DecompressError::TruncatedInput);
        }
        let offset = src[ip] as usize | (src[ip + 1] as usize) << 8;
        ip += 2;
        let produced = out.len() - start_len;
        if offset == 0 || offset > produced {
            return Err(DecompressError::InvalidOffset { offset, produced });
        }
        let mut match_len = (token & 0x0F) as usize + 4;
        if match_len == 19 {
            loop {
                let b = take!();
                match_len += b as usize;
                if b != 255 {
                    break;
                }
            }
        }
        if out.len() + match_len > limit {
            return Err(DecompressError::OutputOverflow { limit });
        }
        let mut from = out.len() - offset;
        if offset >= match_len {
            // Non-overlapping: bulk copy.
            out.extend_from_within(from..from + match_len);
        } else {
            // Overlapping run: byte-at-a-time semantics.
            for _ in 0..match_len {
                let b = out[from];
                out.push(b);
                from += 1;
            }
        }
    }
}

/// Decompresses `src` into a fresh buffer of at most `limit` bytes.
///
/// # Errors
///
/// Returns a [`DecompressError`] for any malformed stream or if the output
/// would exceed `limit`.
///
/// # Examples
///
/// ```
/// let packed = lz4kit::compress(b"abcabcabcabcabcabcabcabc");
/// let out = lz4kit::decompress(&packed, 1024)?;
/// assert_eq!(out, b"abcabcabcabcabcabcabcabc");
/// # Ok::<(), lz4kit::DecompressError>(())
/// ```
pub fn decompress(src: &[u8], limit: usize) -> Result<Vec<u8>, DecompressError> {
    let mut out = Vec::with_capacity(limit.min(1 << 20));
    decompress_append(src, &mut out, limit)?;
    Ok(out)
}

/// Decompresses `src`, requiring the output to be exactly `expected` bytes —
/// the natural API for block storage, where the uncompressed block size is
/// recorded out-of-band.
///
/// # Errors
///
/// Returns [`DecompressError::WrongSize`] if the stream decodes cleanly but
/// to a different size, or any other [`DecompressError`] for malformed input.
///
/// # Examples
///
/// ```
/// let block = vec![42u8; 4096];
/// let packed = lz4kit::compress(&block);
/// assert_eq!(lz4kit::decompress_exact(&packed, 4096)?, block);
/// assert!(lz4kit::decompress_exact(&packed, 4095).is_err());
/// # Ok::<(), lz4kit::DecompressError>(())
/// ```
pub fn decompress_exact(src: &[u8], expected: usize) -> Result<Vec<u8>, DecompressError> {
    let out = decompress(src, expected)?;
    if out.len() != expected {
        return Err(DecompressError::WrongSize {
            expected,
            actual: out.len(),
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compress::{compress, compress_with, Level};

    #[test]
    fn empty_stream_is_error() {
        assert_eq!(decompress(b"", 10), Err(DecompressError::TruncatedInput));
    }

    #[test]
    fn single_zero_token_decodes_empty() {
        assert_eq!(decompress(&[0x00], 10).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn literal_only_stream() {
        // token: 3 literals, no match (final sequence).
        let stream = [0x30, b'a', b'b', b'c'];
        assert_eq!(decompress(&stream, 10).unwrap(), b"abc");
    }

    #[test]
    fn truncated_literals_detected() {
        let stream = [0x30, b'a']; // claims 3 literals, provides 1
        assert_eq!(
            decompress(&stream, 10),
            Err(DecompressError::LiteralOverrun)
        );
    }

    #[test]
    fn zero_offset_rejected() {
        // 1 literal, then a match with offset 0.
        let stream = [0x10, b'x', 0x00, 0x00];
        assert_eq!(
            decompress(&stream, 100),
            Err(DecompressError::InvalidOffset {
                offset: 0,
                produced: 1
            })
        );
    }

    #[test]
    fn offset_before_start_rejected() {
        let stream = [0x10, b'x', 0x05, 0x00]; // offset 5 > 1 byte produced
        assert!(matches!(
            decompress(&stream, 100),
            Err(DecompressError::InvalidOffset { offset: 5, .. })
        ));
    }

    #[test]
    fn truncated_offset_detected() {
        let stream = [0x10, b'x', 0x01]; // missing offset high byte
        assert_eq!(decompress(&stream, 100), Err(DecompressError::TruncatedInput));
    }

    #[test]
    fn overlapping_match_is_run_length() {
        // 1 literal 'a', match offset 1 length 8, then final literal 'b':
        // produces "aaaaaaaaa" + "b".
        let stream = [0x14, b'a', 0x01, 0x00, 0x10, b'b'];
        assert_eq!(decompress(&stream, 100).unwrap(), b"aaaaaaaaab");
    }

    #[test]
    fn output_limit_enforced() {
        let packed = compress(&vec![7u8; 10_000]);
        assert_eq!(
            decompress(&packed, 512),
            Err(DecompressError::OutputOverflow { limit: 512 })
        );
    }

    #[test]
    fn wrong_size_reported() {
        let packed = compress(b"hello world, hello world");
        let err = decompress_exact(&packed, 99).unwrap_err();
        assert!(matches!(err, DecompressError::WrongSize { actual: 24, .. }));
    }

    #[test]
    fn long_match_extension_decodes() {
        let data = vec![3u8; 5_000];
        for level in [Level::Fast, Level::High(16)] {
            let packed = compress_with(&data, level);
            assert_eq!(decompress_exact(&packed, 5_000).unwrap(), data);
        }
    }

    #[test]
    fn garbage_never_panics() {
        // Feed many deterministic pseudo-random buffers; decoding must either
        // succeed or return an error, never panic.
        let mut x = 0xDEADBEEFu64;
        for len in 0..200 {
            let buf: Vec<u8> = (0..len)
                .map(|_| {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                    (x >> 33) as u8
                })
                .collect();
            let _ = decompress(&buf, 1 << 16);
        }
    }
}
