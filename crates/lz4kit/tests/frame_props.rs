//! Property tests for the LZ4 frame format: round-trips across the option
//! space, multi-block framing, and checksum-backed corruption detection.
//! Replay failures with `TESTKIT_SEED=<seed from the report>`.

use lz4kit::frame::{compress_frame, decompress_frame, BlockMaxSize, FrameError, FrameOptions};
use lz4kit::Level;
use testkit::gen::{self, Gen};
use testkit::one_of;

/// Generates payloads with mixed compressibility, up to a few blocks of the
/// 64 KiB frame geometry so multi-block paths are exercised.
fn payloads() -> impl Gen<Value = Vec<u8>> {
    one_of![
        gen::bytes(0..4096),
        gen::vecs(gen::choice(vec![b'x', b'y', b'z']), 0..200_000),
        (gen::bytes(1..128), gen::usizes(1..2048)).map(|(chunk, reps)| {
            chunk
                .iter()
                .cycle()
                .take(chunk.len() * reps)
                .copied()
                .collect::<Vec<u8>>()
        }),
    ]
}

/// Generates arbitrary frame options.
fn options() -> impl Gen<Value = FrameOptions> {
    (
        gen::choice(vec![Level::Fast, Level::High(8)]),
        gen::choice(vec![BlockMaxSize::Max64KiB, BlockMaxSize::Max256KiB]),
        gen::bools(),
        gen::bools(),
        gen::bools(),
    )
        .map(
            |(level, block_max, block_checksums, content_checksum, content_size)| FrameOptions {
                level,
                block_max,
                block_checksums,
                content_checksum,
                content_size,
            },
        )
}

/// Every integrity option enabled: any in-flight corruption must surface as
/// a typed error rather than silently wrong bytes.
fn paranoid() -> FrameOptions {
    FrameOptions {
        level: Level::Fast,
        block_max: BlockMaxSize::Max64KiB,
        block_checksums: true,
        content_checksum: true,
        content_size: true,
    }
}

testkit::prop! {
    cases = 128;

    /// compress_frame ∘ decompress_frame = identity for every option
    /// combination, including payloads spanning several blocks.
    fn frame_roundtrip(data in payloads(), opts in options()) {
        let frame = compress_frame(&data, &opts);
        assert_eq!(decompress_frame(&frame).unwrap(), data);
    }

    /// Flipping any single bit of a fully-checksummed frame is detected.
    /// Magic and header bytes are covered by the header checksum, block
    /// bytes by per-block xxHash32, the decoded stream by the content
    /// checksum and declared content size — no byte is unguarded.
    fn frame_bit_flip_detected(
        data in gen::bytes(1..4096),
        pos in gen::usizes(..),
        bit in gen::u8s(0..8),
    ) {
        let mut frame = compress_frame(&data, &paranoid());
        let pos = pos % frame.len();
        frame[pos] ^= 1 << bit;
        assert!(
            decompress_frame(&frame).is_err(),
            "flip of bit {bit} at byte {pos} went undetected"
        );
    }

    /// Corrupting the trailing content checksum yields exactly
    /// `ContentChecksum`.
    fn frame_content_checksum_verified(data in gen::bytes(0..4096)) {
        let mut frame = compress_frame(&data, &paranoid());
        let n = frame.len();
        // Trailer is the 4-byte content checksum; invert its first byte.
        frame[n - 4] = !frame[n - 4];
        assert_eq!(decompress_frame(&frame), Err(FrameError::ContentChecksum));
    }

    /// Truncating a checksummed frame anywhere is always an error, never a
    /// silent short read.
    fn frame_truncation_detected(
        data in gen::bytes(1..4096),
        cut in gen::f64s(0.0..1.0),
    ) {
        let frame = compress_frame(&data, &paranoid());
        let cut_at = ((frame.len() - 1) as f64 * cut) as usize;
        assert!(decompress_frame(&frame[..cut_at]).is_err());
    }

    /// Frames from data that happens to start with the magic number still
    /// round-trip (no confusion between payload and framing).
    fn frame_magic_payload(data in gen::bytes(0..512)) {
        let mut payload = 0x184D_2204u32.to_le_bytes().to_vec();
        payload.extend_from_slice(&data);
        let frame = compress_frame(&payload, &paranoid());
        assert_eq!(decompress_frame(&frame).unwrap(), payload);
    }
}

#[test]
fn empty_payload_roundtrips_under_all_options() {
    for block_checksums in [false, true] {
        for content_checksum in [false, true] {
            for content_size in [false, true] {
                let opts = FrameOptions {
                    block_checksums,
                    content_checksum,
                    content_size,
                    ..FrameOptions::default()
                };
                let frame = compress_frame(&[], &opts);
                assert_eq!(decompress_frame(&frame).unwrap(), Vec::<u8>::new());
            }
        }
    }
}
