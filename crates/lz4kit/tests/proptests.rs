//! Property-based tests for the LZ4 block codec (on the in-repo `testkit`
//! harness; replay failures with `TESTKIT_SEED=<seed from the report>`).

use lz4kit::{
    compress_bound, compress_into, compress_with, decompress, decompress_exact, Level,
};
use testkit::gen::{self, Gen};
use testkit::one_of;

/// Byte-vector generators with different compressibility characters.
fn arbitrary_bytes() -> impl Gen<Value = Vec<u8>> {
    one_of![
        // Fully random (incompressible).
        gen::bytes(0..8192),
        // Low-alphabet (very compressible).
        gen::vecs(gen::choice(vec![b'a', b'b', b'c']), 0..8192),
        // Repeated chunk structure.
        (gen::bytes(1..64), gen::usizes(1..256)).map(|(chunk, reps)| {
            chunk
                .iter()
                .cycle()
                .take(chunk.len() * reps)
                .copied()
                .collect::<Vec<u8>>()
        }),
    ]
}

testkit::prop! {
    cases = 256;

    /// compress ∘ decompress = identity, at every level.
    fn roundtrip_fast(data in arbitrary_bytes()) {
        let packed = compress_with(&data, Level::Fast);
        let back = decompress_exact(&packed, data.len()).unwrap();
        assert_eq!(back, data);
    }

    fn roundtrip_high(data in arbitrary_bytes(), depth in gen::u8s(1..64)) {
        let packed = compress_with(&data, Level::High(depth));
        let back = decompress_exact(&packed, data.len()).unwrap();
        assert_eq!(back, data);
    }

    /// Compressed output never exceeds the advertised bound.
    fn bound_holds(data in arbitrary_bytes()) {
        let packed = compress_with(&data, Level::Fast);
        assert!(packed.len() <= compress_bound(data.len()));
    }

    /// compress_into with an exact-bound buffer always succeeds and agrees
    /// with the allocating API.
    fn into_matches_alloc(data in arbitrary_bytes()) {
        let mut dst = vec![0u8; compress_bound(data.len())];
        let n = compress_into(&data, &mut dst, Level::Fast).unwrap();
        let alloc = compress_with(&data, Level::Fast);
        assert_eq!(&dst[..n], alloc.as_slice());
    }

    /// Decoding arbitrary garbage never panics and never produces more than
    /// the limit.
    fn decoder_is_total(garbage in gen::bytes(0..4096)) {
        // Any typed error is acceptable; success must respect the limit.
        if let Ok(out) = decompress(&garbage, 1 << 16) {
            assert!(out.len() <= 1 << 16);
        }
    }

    /// Truncating a valid stream is always detected (or decodes to a prefix
    /// via an early literals-only end — never panics, never over-reads).
    fn truncation_detected(data in gen::bytes(32..2048), cut in gen::f64s(0.0..1.0)) {
        let packed = compress_with(&data, Level::Fast);
        let cut_at = ((packed.len() as f64) * cut) as usize;
        let _ = decompress(&packed[..cut_at], data.len());
    }

    /// Higher search depth essentially never produces a larger stream than
    /// depth 1 on the same data. (Greedy parsing is not *strictly* monotone
    /// in theory — a longer match can occasionally force a worse parse
    /// downstream — so a tiny slack is allowed.)
    fn depth_monotone(data in arbitrary_bytes()) {
        let shallow = compress_with(&data, Level::High(1)).len();
        let deep = compress_with(&data, Level::High(32)).len();
        assert!(
            deep as f64 <= shallow as f64 * 1.02 + 8.0,
            "deep={deep} shallow={shallow}"
        );
    }
}

testkit::prop! {
    cases = 128;

    /// Dictionary-mode roundtrip for arbitrary (dict, data) pairs.
    fn dict_roundtrip(
        dict in gen::bytes(0..4096),
        data in arbitrary_bytes(),
    ) {
        let packed = lz4kit::compress_with_dict(&dict, &data);
        let back = lz4kit::decompress_with_dict(&dict, &packed, data.len()).unwrap();
        assert_eq!(back, data);
    }

    /// A dictionary can only help: compressed size with history is never
    /// more than a few bytes above the standalone size.
    fn dict_never_hurts_much(data in arbitrary_bytes()) {
        let standalone = compress_with(&data, Level::Fast).len();
        let with_self_dict = lz4kit::compress_with_dict(&data, &data).len();
        // A single-probe greedy matcher does not always *exploit* the
        // dictionary (hash collisions can hide the aligned match), and —
        // like any greedy parser — extra candidates can even divert it to a
        // slightly worse parse. The invariant is a tight slack bound, with
        // correctness guaranteed by `dict_roundtrip`.
        assert!(
            with_self_dict as f64 <= standalone as f64 * 1.02 + 16.0,
            "{with_self_dict} vs {standalone}"
        );
    }

    /// Wrong dictionary must not silently "succeed" with the right size
    /// AND the right bytes (it may decode garbage, but never the original
    /// unless the stream ignores the dictionary).
    fn dict_mismatch_never_fabricates_original(
        data in gen::bytes(128..1024),
    ) {
        // A dictionary that guarantees dict references in the stream.
        let dict: Vec<u8> = data.iter().rev().copied().collect();
        let packed = lz4kit::compress_with_dict(&data, &data);
        // An error is acceptable; a "successful" decode with the wrong
        // dictionary must not be trusted to equal the original unless the
        // stream simply contains no history references.
        if let Ok(back) = lz4kit::decompress_with_dict(&dict, &packed, data.len()) {
            if back != data {
                assert_ne!(back, data);
            }
        }
    }
}
