//! Property-based tests for the LZ4 block codec.

use lz4kit::{
    compress_bound, compress_into, compress_with, decompress, decompress_exact, Level,
};
use proptest::prelude::*;

/// Byte-vector strategies with different compressibility characters.
fn arbitrary_bytes() -> impl Strategy<Value = Vec<u8>> {
    prop_oneof![
        // Fully random (incompressible).
        proptest::collection::vec(any::<u8>(), 0..8192),
        // Low-alphabet (very compressible).
        proptest::collection::vec(prop_oneof![Just(b'a'), Just(b'b'), Just(b'c')], 0..8192),
        // Repeated chunk structure.
        (proptest::collection::vec(any::<u8>(), 1..64), 1usize..256).prop_map(
            |(chunk, reps)| chunk
                .iter()
                .cycle()
                .take(chunk.len() * reps)
                .copied()
                .collect()
        ),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// compress ∘ decompress = identity, at every level.
    #[test]
    fn roundtrip_fast(data in arbitrary_bytes()) {
        let packed = compress_with(&data, Level::Fast);
        let back = decompress_exact(&packed, data.len()).unwrap();
        prop_assert_eq!(back, data);
    }

    #[test]
    fn roundtrip_high(data in arbitrary_bytes(), depth in 1u8..64) {
        let packed = compress_with(&data, Level::High(depth));
        let back = decompress_exact(&packed, data.len()).unwrap();
        prop_assert_eq!(back, data);
    }

    /// Compressed output never exceeds the advertised bound.
    #[test]
    fn bound_holds(data in arbitrary_bytes()) {
        let packed = compress_with(&data, Level::Fast);
        prop_assert!(packed.len() <= compress_bound(data.len()));
    }

    /// compress_into with an exact-bound buffer always succeeds and agrees
    /// with the allocating API.
    #[test]
    fn into_matches_alloc(data in arbitrary_bytes()) {
        let mut dst = vec![0u8; compress_bound(data.len())];
        let n = compress_into(&data, &mut dst, Level::Fast).unwrap();
        let alloc = compress_with(&data, Level::Fast);
        prop_assert_eq!(&dst[..n], alloc.as_slice());
    }

    /// Decoding arbitrary garbage never panics and never produces more than
    /// the limit.
    #[test]
    fn decoder_is_total(garbage in proptest::collection::vec(any::<u8>(), 0..4096)) {
        // Any typed error is acceptable; success must respect the limit.
        if let Ok(out) = decompress(&garbage, 1 << 16) {
            prop_assert!(out.len() <= 1 << 16);
        }
    }

    /// Truncating a valid stream is always detected (or decodes to a prefix
    /// via an early literals-only end — never panics, never over-reads).
    #[test]
    fn truncation_detected(data in proptest::collection::vec(any::<u8>(), 32..2048), cut in 0.0f64..1.0) {
        let packed = compress_with(&data, Level::Fast);
        let cut_at = ((packed.len() as f64) * cut) as usize;
        let _ = decompress(&packed[..cut_at], data.len());
    }

    /// Higher search depth essentially never produces a larger stream than
    /// depth 1 on the same data. (Greedy parsing is not *strictly* monotone
    /// in theory — a longer match can occasionally force a worse parse
    /// downstream — so a tiny slack is allowed.)
    #[test]
    fn depth_monotone(data in arbitrary_bytes()) {
        let shallow = compress_with(&data, Level::High(1)).len();
        let deep = compress_with(&data, Level::High(32)).len();
        prop_assert!(
            deep as f64 <= shallow as f64 * 1.02 + 8.0,
            "deep={deep} shallow={shallow}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Dictionary-mode roundtrip for arbitrary (dict, data) pairs.
    #[test]
    fn dict_roundtrip(
        dict in proptest::collection::vec(any::<u8>(), 0..4096),
        data in arbitrary_bytes(),
    ) {
        let packed = lz4kit::compress_with_dict(&dict, &data);
        let back = lz4kit::decompress_with_dict(&dict, &packed, data.len()).unwrap();
        prop_assert_eq!(back, data);
    }

    /// A dictionary can only help: compressed size with history is never
    /// more than a few bytes above the standalone size.
    #[test]
    fn dict_never_hurts_much(data in arbitrary_bytes()) {
        let standalone = compress_with(&data, Level::Fast).len();
        let with_self_dict = lz4kit::compress_with_dict(&data, &data).len();
        // A single-probe greedy matcher does not always *exploit* the
        // dictionary (hash collisions can hide the aligned match), and —
        // like any greedy parser — extra candidates can even divert it to a
        // slightly worse parse. The invariant is a tight slack bound, with
        // correctness guaranteed by `dict_roundtrip`.
        prop_assert!(
            with_self_dict as f64 <= standalone as f64 * 1.02 + 16.0,
            "{with_self_dict} vs {standalone}"
        );
    }

    /// Wrong dictionary must not silently "succeed" with the right size
    /// AND the right bytes (it may decode garbage, but never the original
    /// unless the stream ignores the dictionary).
    #[test]
    fn dict_mismatch_never_fabricates_original(
        data in proptest::collection::vec(any::<u8>(), 128..1024),
    ) {
        // A dictionary that guarantees dict references in the stream.
        let dict: Vec<u8> = data.iter().rev().copied().collect();
        let packed = lz4kit::compress_with_dict(&data, &data);
        // An error is acceptable; a "successful" decode with the wrong
        // dictionary must not be trusted to equal the original unless the
        // stream simply contains no history references.
        if let Ok(back) = lz4kit::decompress_with_dict(&dict, &packed, data.len()) {
            if back != data {
                prop_assert_ne!(back, data);
            }
        }
    }
}
