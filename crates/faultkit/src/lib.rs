//! # faultkit — seed-deterministic fault injection
//!
//! The middle tier of a disaggregated block store must keep serving while
//! replicas crash, links flap, and packets vanish. This crate is the
//! *adversary* for that claim: a zero-dependency fault-injection subsystem
//! whose every decision is a pure function of a seed, so a chaos run that
//! finds a bug replays byte-identically.
//!
//! Two layers:
//!
//! * [`plan`] — **timed fault schedules**. A [`FaultPlan`] is an ordered
//!   list of [`FaultEvent`]s (storage-server crash/restart, slow-replica
//!   stalls, link down/up and bandwidth degradation) built either
//!   explicitly with [`FaultPlan::at`] or drawn from a seed with
//!   [`FaultPlan::chaos`]. The cluster driver maps each event onto its
//!   discrete-event queue, so faults interleave with regular traffic in
//!   FIFO timestamp order and the whole run stays reproducible.
//! * [`packet`] — **per-packet adversaries**. [`packet::PacketChaos`]
//!   deterministically drops/duplicates packets (with a bounded
//!   consecutive-drop run so progress is always possible), used to drive
//!   the `rocenet` RC state machines through NAK/retransmit recovery.
//!
//! Nothing here mutates a system directly: faultkit only *describes*
//! faults. The interpretation — flipping a `StorageServer`'s alive bit,
//! scaling a `FluidResource`'s capacity — belongs to the layer that owns
//! the faulted object, which keeps this crate dependency-light and the
//! fault taxonomy reusable across the cluster simulation, protocol tests,
//! and the bench sweeps. Under the sharded engine
//! (`simkit::ShardedSim`) that ownership is per shard: the cluster
//! driver schedules a server-targeted [`FaultEvent`] on both the hub
//! shard (placement health, tracing) and the owning store shard (alive
//! bit, disk slow factor) at the same timestamp, so fault delivery stays
//! deterministic — and byte-identical — at every worker-thread count.
//!
//! # Examples
//!
//! ```
//! use faultkit::{ChaosSpec, FaultKind, FaultPlan};
//! use simkit::Time;
//!
//! // Explicit schedule: crash server 2 at 4 ms, bring it back at 8 ms.
//! let plan = FaultPlan::new()
//!     .at(Time::from_ms(4.0), FaultKind::ServerCrash { server: 2 })
//!     .at(Time::from_ms(8.0), FaultKind::ServerRestart { server: 2 });
//! assert_eq!(plan.events().len(), 2);
//!
//! // Seeded chaos: same seed, same plan — byte-identical trace.
//! let spec = ChaosSpec::new(Time::from_ms(2.0), Time::from_ms(10.0));
//! let a = FaultPlan::chaos(7, &spec);
//! let b = FaultPlan::chaos(7, &spec);
//! assert_eq!(a.trace(), b.trace());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod packet;
pub mod plan;

pub use packet::{PacketChaos, PacketFate};
pub use plan::{ChaosSpec, FaultEvent, FaultKind, FaultPlan, LinkTarget};
