//! Timed fault schedules: what breaks, when, and for how long.
//!
//! A [`FaultPlan`] is the unit of fault injection — an ordered list of
//! [`FaultEvent`]s that a driver (the cluster simulation, a bench sweep)
//! replays through its own event queue. Plans are *values*: building one
//! performs no side effects, two plans built from the same seed compare
//! equal, and [`FaultPlan::trace`] renders the schedule as a stable
//! string for golden-file and replay-equality assertions.
//!
//! The seeded generator ([`FaultPlan::chaos`]) draws crash, stall, and
//! link-flap *episodes* — a fault paired with its recovery — inside a
//! configurable horizon, with an interval-sweep admission check that
//! bounds how many servers may be down at once so generated chaos cannot
//! trivially destroy every replica unless the spec asks for that.

use simkit::{Rng, Time};
use std::fmt;

/// Which fabric resource a link fault degrades.
///
/// Mirrors the bandwidth-carrying members of `core::fabric::FluidKey`
/// without depending on `core`: the driver maps each variant onto its own
/// fluid-resource handle. Port indices are validated by the driver (an
/// out-of-range port is ignored there), not here, so plans stay portable
/// across topologies.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum LinkTarget {
    /// NIC egress toward storage server `0..ports`.
    PortTx(u8),
    /// NIC ingress from storage server `0..ports`.
    PortRx(u8),
    /// Host-to-device DMA lane (compute side of the middle tier).
    NicH2D,
    /// Device-to-host DMA lane.
    NicD2H,
    /// Accelerator-device H2D lane.
    DevH2D,
    /// Accelerator-device D2H lane.
    DevD2H,
}

impl LinkTarget {
    fn label(self) -> String {
        match self {
            LinkTarget::PortTx(p) => format!("port-tx{p}"),
            LinkTarget::PortRx(p) => format!("port-rx{p}"),
            LinkTarget::NicH2D => "nic-h2d".to_string(),
            LinkTarget::NicD2H => "nic-d2h".to_string(),
            LinkTarget::DevH2D => "dev-h2d".to_string(),
            LinkTarget::DevD2H => "dev-d2h".to_string(),
        }
    }
}

/// One kind of injected fault.
///
/// Every degrading variant has a restoring counterpart so schedules can
/// express bounded outages; the seeded generator always emits them in
/// pairs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultKind {
    /// Storage server `server` stops accepting appends and fetches.
    ServerCrash {
        /// Index of the storage server (driver-local numbering).
        server: u32,
    },
    /// A crashed server returns, with whatever data it held at crash
    /// time — re-replication of writes it missed is the scrubber's job.
    ServerRestart {
        /// Index of the storage server.
        server: u32,
    },
    /// Server `server` stays alive but its disk service time is
    /// multiplied by `factor` (> 1 = slower), modelling a gray failure.
    ServerSlow {
        /// Index of the storage server.
        server: u32,
        /// Service-time multiplier; `8.0` means 8× slower.
        factor: f64,
    },
    /// Ends a [`FaultKind::ServerSlow`] stall (factor back to 1).
    ServerNormal {
        /// Index of the storage server.
        server: u32,
    },
    /// Scales a fabric link to `fraction` of its nominal bandwidth.
    /// `0.0` is a hard link-down, `1.0` restores full capacity, values
    /// in between model congestion or lane degradation.
    LinkDegrade {
        /// Which fabric resource is degraded.
        link: LinkTarget,
        /// Fraction of nominal capacity remaining, in `[0, 1]`.
        fraction: f64,
    },
}

impl FaultKind {
    /// A hard link-down on `link` (capacity scaled to zero).
    pub fn link_down(link: LinkTarget) -> Self {
        FaultKind::LinkDegrade { link, fraction: 0.0 }
    }

    /// Restores `link` to full nominal capacity.
    pub fn link_up(link: LinkTarget) -> Self {
        FaultKind::LinkDegrade { link, fraction: 1.0 }
    }

    fn label(self) -> String {
        match self {
            FaultKind::ServerCrash { server } => format!("server-crash s{server}"),
            FaultKind::ServerRestart { server } => format!("server-restart s{server}"),
            FaultKind::ServerSlow { server, factor } => {
                format!("server-slow s{server} x{factor:.2}")
            }
            FaultKind::ServerNormal { server } => format!("server-normal s{server}"),
            FaultKind::LinkDegrade { link, fraction } => {
                format!("link-degrade {} frac={fraction:.3}", link.label())
            }
        }
    }
}

impl fmt::Display for LinkTarget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// The same stable string [`FaultPlan::trace`] uses per event, so trace
/// annotations and golden schedules agree on fault names.
impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// A fault bound to its injection time.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultEvent {
    /// Simulation time at which the fault fires.
    pub at: Time,
    /// What happens.
    pub kind: FaultKind,
}

/// An ordered fault schedule.
///
/// Events are kept sorted by time; events at the same instant keep their
/// insertion order (matching the FIFO tie-break of the event engine), so
/// a plan replays identically however it was built.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan (no faults — the fair-weather baseline).
    pub fn new() -> Self {
        FaultPlan { events: Vec::new() }
    }

    /// Adds a fault at `at`, keeping the schedule time-ordered. Builder
    /// style: consumes and returns the plan.
    pub fn at(mut self, at: Time, kind: FaultKind) -> Self {
        self.push(at, kind);
        self
    }

    /// Adds a fault at `at` in place (for loop-built schedules).
    pub fn push(&mut self, at: Time, kind: FaultKind) {
        self.events.push(FaultEvent { at, kind });
        // Stable sort: same-time events keep insertion order.
        self.events.sort_by_key(|e| e.at);
    }

    /// The schedule, ordered by time (ties in insertion order).
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of scheduled fault events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Renders the schedule as one line per event
    /// (`"<ps>ps <fault label>"`). The format is stable and is what the
    /// seed-replay tests compare, so two plans with equal traces inject
    /// identically.
    pub fn trace(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&format!("{}ps {}\n", e.at.as_ps(), e.kind.label()));
        }
        out
    }

    /// Draws a randomized-but-deterministic schedule from `seed`.
    ///
    /// Each requested crash / stall / link-flap becomes an *episode*: a
    /// degrading event at a uniform time inside the spec's horizon plus
    /// the matching recovery after an exponentially distributed outage
    /// (clamped to end inside the horizon, so every injected fault is
    /// healed before the run's measurement tail). Crash episodes pass an
    /// admission sweep that rejects candidates which would overlap an
    /// existing outage on the same server or push the number of
    /// concurrently-down servers above
    /// [`ChaosSpec::with_max_concurrent_down`]; a rejected candidate is
    /// re-drawn a bounded number of times and then skipped, so
    /// generation always terminates and the same seed always yields the
    /// same plan.
    pub fn chaos(seed: u64, spec: &ChaosSpec) -> Self {
        let mut rng = Rng::new(seed);
        let mut plan = FaultPlan::new();
        let span_ps = spec.horizon_end.as_ps().saturating_sub(spec.horizon_start.as_ps());
        if span_ps == 0 {
            return plan;
        }

        // Accepted outage intervals, per category, for the admission sweep.
        let mut crash_spans: Vec<(u32, Time, Time)> = Vec::new();
        let mut stall_spans: Vec<(u32, Time, Time)> = Vec::new();

        let draw_episode = |rng: &mut Rng| -> (Time, Time) {
            let t0 = Time::from_ps(
                spec.horizon_start.as_ps().saturating_add(rng.gen_range(span_ps)),
            );
            let outage = Time::from_us(rng.gen_exp(spec.mean_outage.as_us()).max(1.0));
            let t1 = t0.saturating_add(outage).min(spec.horizon_end);
            (t0, t1)
        };

        const ATTEMPTS: u32 = 8;

        if spec.servers > 0 {
            for _ in 0..spec.crashes {
                for _ in 0..ATTEMPTS {
                    let server = rng.gen_range(u64::from(spec.servers)) as u32;
                    let (t0, t1) = draw_episode(&mut rng);
                    let same = crash_spans.iter().any(|&(s, a, b)| s == server && t0 < b && a < t1);
                    let concurrent = crash_spans
                        .iter()
                        .filter(|&&(_, a, b)| t0 < b && a < t1)
                        .count() as u32;
                    if same || concurrent >= spec.max_concurrent_down {
                        continue;
                    }
                    crash_spans.push((server, t0, t1));
                    plan.push(t0, FaultKind::ServerCrash { server });
                    plan.push(t1, FaultKind::ServerRestart { server });
                    break;
                }
            }

            for _ in 0..spec.stalls {
                for _ in 0..ATTEMPTS {
                    let server = rng.gen_range(u64::from(spec.servers)) as u32;
                    let (t0, t1) = draw_episode(&mut rng);
                    let busy = crash_spans
                        .iter()
                        .chain(stall_spans.iter())
                        .any(|&(s, a, b)| s == server && t0 < b && a < t1);
                    if busy {
                        continue;
                    }
                    stall_spans.push((server, t0, t1));
                    plan.push(t0, FaultKind::ServerSlow { server, factor: spec.slow_factor });
                    plan.push(t1, FaultKind::ServerNormal { server });
                    break;
                }
            }
        }

        if spec.ports > 0 {
            for _ in 0..spec.link_flaps {
                let port = rng.gen_range(u64::from(spec.ports)) as u8;
                let link = if rng.gen_bool(0.5) {
                    LinkTarget::PortTx(port)
                } else {
                    LinkTarget::PortRx(port)
                };
                let (t0, t1) = draw_episode(&mut rng);
                // Half the flaps are hard downs, half partial degradation.
                let fraction = if rng.gen_bool(0.5) {
                    0.0
                } else {
                    0.25 + 0.5 * rng.gen_f64()
                };
                plan.push(t0, FaultKind::LinkDegrade { link, fraction });
                plan.push(t1, FaultKind::link_up(link));
            }
        }

        plan
    }
}

/// Tuning knobs for [`FaultPlan::chaos`].
///
/// The defaults describe a mild storm over a 3-server, 2-port cluster:
/// one crash, one gray-failure stall, one link flap, mean outage 1 ms,
/// never more than one server hard-down at a time.
#[derive(Clone, Debug, PartialEq)]
pub struct ChaosSpec {
    horizon_start: Time,
    horizon_end: Time,
    servers: u32,
    ports: u8,
    crashes: u32,
    stalls: u32,
    link_flaps: u32,
    mean_outage: Time,
    max_concurrent_down: u32,
    slow_factor: f64,
}

impl ChaosSpec {
    /// A spec whose faults all start inside `[start, end)` and whose
    /// recoveries are clamped to `end`.
    ///
    /// # Panics
    ///
    /// Panics if `end <= start`.
    pub fn new(start: Time, end: Time) -> Self {
        assert!(end > start, "chaos horizon must be non-empty");
        ChaosSpec {
            horizon_start: start,
            horizon_end: end,
            servers: 3,
            ports: 2,
            crashes: 1,
            stalls: 1,
            link_flaps: 1,
            mean_outage: Time::from_ms(1.0),
            max_concurrent_down: 1,
            slow_factor: 8.0,
        }
    }

    /// Number of storage servers faults may target.
    pub fn with_servers(mut self, servers: u32) -> Self {
        self.servers = servers;
        self
    }

    /// Number of NIC ports link flaps may target.
    pub fn with_ports(mut self, ports: u8) -> Self {
        self.ports = ports;
        self
    }

    /// Number of crash/restart episodes to draw.
    pub fn with_crashes(mut self, crashes: u32) -> Self {
        self.crashes = crashes;
        self
    }

    /// Number of slow-replica (gray failure) episodes to draw.
    pub fn with_stalls(mut self, stalls: u32) -> Self {
        self.stalls = stalls;
        self
    }

    /// Number of link-flap episodes to draw.
    pub fn with_link_flaps(mut self, flaps: u32) -> Self {
        self.link_flaps = flaps;
        self
    }

    /// Mean of the exponential outage-length distribution.
    pub fn with_mean_outage(mut self, outage: Time) -> Self {
        self.mean_outage = outage;
        self
    }

    /// Upper bound on servers hard-down at the same instant. Raise to
    /// `servers` to permit (and with enough crashes, force) total loss.
    pub fn with_max_concurrent_down(mut self, n: u32) -> Self {
        self.max_concurrent_down = n.max(1);
        self
    }

    /// Service-time multiplier used by stall episodes.
    pub fn with_slow_factor(mut self, factor: f64) -> Self {
        self.slow_factor = factor;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_plan_is_time_ordered() {
        let plan = FaultPlan::new()
            .at(Time::from_ms(8.0), FaultKind::ServerRestart { server: 1 })
            .at(Time::from_ms(4.0), FaultKind::ServerCrash { server: 1 });
        assert_eq!(plan.events()[0].at, Time::from_ms(4.0));
        assert_eq!(plan.events()[1].at, Time::from_ms(8.0));
        assert_eq!(plan.len(), 2);
        assert!(!plan.is_empty());
    }

    #[test]
    fn same_time_events_keep_insertion_order() {
        let t = Time::from_ms(1.0);
        let plan = FaultPlan::new()
            .at(t, FaultKind::ServerCrash { server: 0 })
            .at(t, FaultKind::ServerCrash { server: 1 })
            .at(t, FaultKind::ServerCrash { server: 2 });
        let order: Vec<u32> = plan
            .events()
            .iter()
            .map(|e| match e.kind {
                FaultKind::ServerCrash { server } => server,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![0, 1, 2]);
    }

    #[test]
    fn chaos_same_seed_identical() {
        let spec = ChaosSpec::new(Time::from_ms(1.0), Time::from_ms(20.0))
            .with_crashes(3)
            .with_stalls(2)
            .with_link_flaps(2);
        let a = FaultPlan::chaos(42, &spec);
        let b = FaultPlan::chaos(42, &spec);
        assert_eq!(a, b);
        assert_eq!(a.trace(), b.trace());
        assert!(!a.is_empty());
    }

    #[test]
    fn chaos_different_seeds_differ() {
        let spec = ChaosSpec::new(Time::from_ms(1.0), Time::from_ms(20.0)).with_crashes(3);
        let a = FaultPlan::chaos(1, &spec);
        let b = FaultPlan::chaos(2, &spec);
        assert_ne!(a.trace(), b.trace());
    }

    #[test]
    fn chaos_events_inside_horizon() {
        let start = Time::from_ms(2.0);
        let end = Time::from_ms(10.0);
        let spec = ChaosSpec::new(start, end)
            .with_crashes(4)
            .with_stalls(4)
            .with_link_flaps(4)
            .with_max_concurrent_down(2);
        let plan = FaultPlan::chaos(9, &spec);
        for e in plan.events() {
            assert!(e.at >= start && e.at <= end, "event at {:?} escapes horizon", e.at);
        }
    }

    #[test]
    fn chaos_episodes_are_paired() {
        let spec = ChaosSpec::new(Time::from_ms(1.0), Time::from_ms(50.0))
            .with_crashes(5)
            .with_stalls(3)
            .with_link_flaps(0);
        let plan = FaultPlan::chaos(77, &spec);
        let mut down: Vec<u32> = Vec::new();
        let mut slow: Vec<u32> = Vec::new();
        for e in plan.events() {
            match e.kind {
                FaultKind::ServerCrash { server } => {
                    assert!(!down.contains(&server), "double crash on s{server}");
                    down.push(server);
                }
                FaultKind::ServerRestart { server } => {
                    assert!(down.contains(&server), "restart without crash");
                    down.retain(|&s| s != server);
                }
                FaultKind::ServerSlow { server, .. } => {
                    assert!(!slow.contains(&server), "double stall on s{server}");
                    slow.push(server);
                }
                FaultKind::ServerNormal { server } => {
                    assert!(slow.contains(&server), "normal without slow");
                    slow.retain(|&s| s != server);
                }
                _ => {}
            }
        }
        assert!(down.is_empty(), "unhealed crashes: {down:?}");
        assert!(slow.is_empty(), "unhealed stalls: {slow:?}");
    }

    #[test]
    fn chaos_respects_concurrent_down_cap() {
        let spec = ChaosSpec::new(Time::from_ms(1.0), Time::from_ms(30.0))
            .with_servers(6)
            .with_crashes(12)
            .with_stalls(0)
            .with_link_flaps(0)
            .with_mean_outage(Time::from_ms(10.0))
            .with_max_concurrent_down(2);
        for seed in 0..20 {
            let plan = FaultPlan::chaos(seed, &spec);
            let mut down = 0u32;
            for e in plan.events() {
                match e.kind {
                    FaultKind::ServerCrash { .. } => {
                        down += 1;
                        assert!(down <= 2, "seed {seed}: {down} servers down at once");
                    }
                    FaultKind::ServerRestart { .. } => down -= 1,
                    _ => {}
                }
            }
        }
    }

    #[test]
    fn link_helpers() {
        assert_eq!(
            FaultKind::link_down(LinkTarget::PortTx(1)),
            FaultKind::LinkDegrade { link: LinkTarget::PortTx(1), fraction: 0.0 }
        );
        assert_eq!(
            FaultKind::link_up(LinkTarget::NicH2D),
            FaultKind::LinkDegrade { link: LinkTarget::NicH2D, fraction: 1.0 }
        );
    }

    #[test]
    fn trace_format_is_stable() {
        let plan = FaultPlan::new()
            .at(Time::from_us(3.0), FaultKind::ServerCrash { server: 1 })
            .at(Time::from_us(5.0), FaultKind::link_down(LinkTarget::PortRx(0)));
        assert_eq!(
            plan.trace(),
            "3000000ps server-crash s1\n5000000ps link-degrade port-rx0 frac=0.000\n"
        );
    }

    #[test]
    fn empty_horizon_span_yields_empty_plan() {
        // Degenerate but reachable via saturating arithmetic upstream.
        let spec = ChaosSpec::new(Time::from_ps(0), Time::from_ps(1));
        let plan = FaultPlan::chaos(5, &spec);
        // Span of 1 ps: events exist but stay inside [0, 1].
        for e in plan.events() {
            assert!(e.at.as_ps() <= 1);
        }
    }
}
