//! Per-packet adversaries for protocol state machines.
//!
//! [`PacketChaos`] answers one question per packet — deliver, drop, or
//! duplicate? — from a seeded stream, so a lossy-channel test exercises
//! the `rocenet` go-back-N NAK/retransmit machinery along the exact same
//! path on every run. A cap on consecutive drops guarantees liveness:
//! however hostile the parameters, some packet always gets through, so
//! bounded-retry protocols terminate instead of flaking.

use simkit::Rng;

/// The verdict for one packet.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PacketFate {
    /// Forward the packet unchanged.
    Deliver,
    /// Silently discard it (the receiver sees a PSN gap).
    Drop,
    /// Deliver it twice (exercises duplicate detection).
    Duplicate,
}

/// A seeded drop/duplicate injector with bounded drop runs.
///
/// # Examples
///
/// ```
/// use faultkit::{PacketChaos, PacketFate};
///
/// let mut a = PacketChaos::new(3).with_drop(0.3);
/// let mut b = PacketChaos::new(3).with_drop(0.3);
/// for _ in 0..100 {
///     assert_eq!(a.fate(), b.fate());
/// }
/// assert!(a.dropped() > 0);
/// ```
#[derive(Clone, Debug)]
pub struct PacketChaos {
    rng: Rng,
    drop_p: f64,
    dup_p: f64,
    max_consecutive_drops: u32,
    run: u32,
    decided: u64,
    dropped: u64,
    duplicated: u64,
}

impl PacketChaos {
    /// A chaos stream from `seed`: 10 % drops, 5 % duplicates, at most
    /// 3 consecutive drops.
    pub fn new(seed: u64) -> Self {
        PacketChaos {
            rng: Rng::new(seed),
            drop_p: 0.10,
            dup_p: 0.05,
            max_consecutive_drops: 3,
            run: 0,
            decided: 0,
            dropped: 0,
            duplicated: 0,
        }
    }

    /// Sets the per-packet drop probability.
    pub fn with_drop(mut self, p: f64) -> Self {
        self.drop_p = p.clamp(0.0, 1.0);
        self
    }

    /// Sets the per-packet duplicate probability.
    pub fn with_duplicate(mut self, p: f64) -> Self {
        self.dup_p = p.clamp(0.0, 1.0);
        self
    }

    /// Caps the longest run of consecutive drops (minimum 1). After the
    /// cap, the next packet is forced through, which keeps retransmit
    /// loops live even at `drop = 1.0`.
    pub fn with_max_consecutive_drops(mut self, n: u32) -> Self {
        self.max_consecutive_drops = n.max(1);
        self
    }

    /// Decides the fate of the next packet.
    pub fn fate(&mut self) -> PacketFate {
        self.decided += 1;
        if self.run >= self.max_consecutive_drops {
            self.run = 0;
            return PacketFate::Deliver;
        }
        let u = self.rng.gen_f64();
        if u < self.drop_p {
            self.run += 1;
            self.dropped += 1;
            PacketFate::Drop
        } else if u < self.drop_p + self.dup_p {
            self.run = 0;
            self.duplicated += 1;
            PacketFate::Duplicate
        } else {
            self.run = 0;
            PacketFate::Deliver
        }
    }

    /// Packets judged so far.
    pub fn decided(&self) -> u64 {
        self.decided
    }

    /// Packets dropped so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Packets duplicated so far.
    pub fn duplicated(&self) -> u64 {
        self.duplicated
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_fates() {
        let mut a = PacketChaos::new(11).with_drop(0.4).with_duplicate(0.1);
        let mut b = PacketChaos::new(11).with_drop(0.4).with_duplicate(0.1);
        for _ in 0..5_000 {
            assert_eq!(a.fate(), b.fate());
        }
        assert_eq!(a.dropped(), b.dropped());
        assert_eq!(a.duplicated(), b.duplicated());
    }

    #[test]
    fn drop_runs_are_bounded_even_at_certain_loss() {
        let mut chaos = PacketChaos::new(5).with_drop(1.0).with_max_consecutive_drops(3);
        let mut run = 0u32;
        let mut delivered = 0u64;
        for _ in 0..1_000 {
            match chaos.fate() {
                PacketFate::Drop => {
                    run += 1;
                    assert!(run <= 3, "drop run exceeded cap");
                }
                _ => {
                    run = 0;
                    delivered += 1;
                }
            }
        }
        assert!(delivered >= 250, "forced delivery keeps the channel live");
    }

    #[test]
    fn rates_track_configuration() {
        let mut chaos = PacketChaos::new(19).with_drop(0.2).with_duplicate(0.1);
        for _ in 0..20_000 {
            chaos.fate();
        }
        let drop_rate = chaos.dropped() as f64 / chaos.decided() as f64;
        let dup_rate = chaos.duplicated() as f64 / chaos.decided() as f64;
        assert!((drop_rate - 0.2).abs() < 0.03, "drop_rate={drop_rate}");
        assert!((dup_rate - 0.1).abs() < 0.03, "dup_rate={dup_rate}");
    }

    #[test]
    fn zero_probabilities_always_deliver() {
        let mut chaos = PacketChaos::new(1).with_drop(0.0).with_duplicate(0.0);
        for _ in 0..1_000 {
            assert_eq!(chaos.fate(), PacketFate::Deliver);
        }
        assert_eq!(chaos.dropped(), 0);
        assert_eq!(chaos.duplicated(), 0);
    }
}
