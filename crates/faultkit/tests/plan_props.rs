//! Property tests for the fault-plan invariants that the chaos suite
//! leans on: seed determinism, horizon containment, episode pairing,
//! the concurrent-down cap, and bounded packet-drop runs.

use faultkit::{ChaosSpec, FaultKind, FaultPlan, PacketChaos, PacketFate};
use simkit::Time;
use testkit::gen::{self, Gen};

fn spec_from(
    span_us: u32,
    servers: u32,
    crashes: u32,
    stalls: u32,
    flaps: u32,
    max_down: u32,
) -> ChaosSpec {
    let start = Time::from_us(100.0);
    let end = start + Time::from_us(f64::from(span_us.max(1)));
    ChaosSpec::new(start, end)
        .with_servers(servers)
        .with_ports(2)
        .with_crashes(crashes)
        .with_stalls(stalls)
        .with_link_flaps(flaps)
        .with_mean_outage(Time::from_us(f64::from(span_us.max(1)) / 4.0))
        .with_max_concurrent_down(max_down)
}

testkit::prop! {
    cases = 96;

    /// The same seed and spec always yield byte-identical plans, and a
    /// different seed (almost) always yields a different trace when the
    /// plan is non-empty.
    fn chaos_is_a_pure_function_of_the_seed(
        seed in gen::u64s(..),
        span_us in gen::u32s(1..100_000),
        servers in gen::u32s(1..8),
        crashes in gen::u32s(0..6),
        stalls in gen::u32s(0..4),
        flaps in gen::u32s(0..4),
    ) {
        let spec = spec_from(span_us, servers, crashes, stalls, flaps, 1);
        let a = FaultPlan::chaos(seed, &spec);
        let b = FaultPlan::chaos(seed, &spec);
        assert_eq!(a, b);
        assert_eq!(a.trace(), b.trace());
    }

    /// Every generated event lands inside the spec's horizon, crash /
    /// stall episodes are properly paired (each fault healed exactly
    /// once, in order), and the hard-down cap is never exceeded.
    fn chaos_plans_are_well_formed(
        seed in gen::u64s(..),
        span_us in gen::u32s(10..100_000),
        servers in gen::u32s(1..8),
        crashes in gen::u32s(0..10),
        stalls in gen::u32s(0..6),
        flaps in gen::u32s(0..6),
        max_down in gen::u32s(1..4),
    ) {
        let spec = spec_from(span_us, servers, crashes, stalls, flaps, max_down);
        let start = Time::from_us(100.0);
        let end = start + Time::from_us(f64::from(span_us.max(1)));
        let plan = FaultPlan::chaos(seed, &spec);

        let mut down: Vec<u32> = Vec::new();
        let mut slow: Vec<u32> = Vec::new();
        let mut last = Time::ZERO;
        for e in plan.events() {
            assert!(e.at >= start && e.at <= end, "event escapes horizon");
            assert!(e.at >= last, "plan not time-ordered");
            last = e.at;
            match e.kind {
                FaultKind::ServerCrash { server } => {
                    assert!(server < servers, "crash targets unknown server");
                    assert!(!down.contains(&server), "server crashed twice");
                    down.push(server);
                    assert!(
                        down.len() as u32 <= max_down,
                        "concurrent-down cap violated"
                    );
                }
                FaultKind::ServerRestart { server } => {
                    assert!(down.contains(&server), "restart without crash");
                    down.retain(|&s| s != server);
                }
                FaultKind::ServerSlow { server, factor } => {
                    assert!(server < servers);
                    assert!(factor > 1.0, "stall factor must slow the disk");
                    assert!(!slow.contains(&server), "server stalled twice");
                    slow.push(server);
                }
                FaultKind::ServerNormal { server } => {
                    assert!(slow.contains(&server), "normal without slow");
                    slow.retain(|&s| s != server);
                }
                FaultKind::LinkDegrade { fraction, .. } => {
                    assert!((0.0..=1.0).contains(&fraction));
                }
            }
        }
        assert!(down.is_empty(), "crash never healed inside horizon");
        assert!(slow.is_empty(), "stall never healed inside horizon");
    }

    /// Packet chaos never exceeds its consecutive-drop cap and is
    /// replayable, for arbitrary probabilities — including certain loss.
    fn packet_chaos_is_bounded_and_deterministic(
        seed in gen::u64s(..),
        drop_pct in gen::u32s(0..101),
        dup_pct in gen::u32s(0..51),
        cap in gen::u32s(1..6),
        n in gen::u32s(1..2_000),
    ) {
        let build = || {
            PacketChaos::new(seed)
                .with_drop(f64::from(drop_pct) / 100.0)
                .with_duplicate(f64::from(dup_pct) / 100.0)
                .with_max_consecutive_drops(cap)
        };
        let mut a = build();
        let mut b = build();
        let mut run = 0u32;
        for _ in 0..n {
            let fa = a.fate();
            assert_eq!(fa, b.fate(), "fate stream diverged");
            if fa == PacketFate::Drop {
                run += 1;
                assert!(run <= cap, "consecutive drops exceeded cap");
            } else {
                run = 0;
            }
        }
        assert_eq!(a.dropped(), b.dropped());
        assert_eq!(a.duplicated(), b.duplicated());
        assert_eq!(a.decided(), u64::from(n));
    }
}
