//! Deterministic, dependency-free property testing for the SmartDS
//! workspace.
//!
//! The workspace builds offline, so `testkit` replaces `proptest` (and the
//! `criterion` bench harness) with a small in-repo substrate:
//!
//! - **Generators** ([`Gen`]) are combinators over a *choice stream*: every
//!   random decision is one `u64` drawn from a [`Source`], which in record
//!   mode is backed by [`simkit::Rng`] (SplitMix64) and logs each draw.
//! - **Shrinking** edits the recorded choice stream — deleting
//!   exponentially-sized chunks and halving individual draws — and replays
//!   it through the *same* generator. A shrunk counterexample therefore
//!   always satisfies the generator's constraints (ranges, lengths,
//!   weights), even through [`Gen::map`] and [`one_of!`].
//! - **Replay**: every failure report names the case seed; re-running with
//!   `TESTKIT_SEED=<seed>` regenerates exactly that case (and re-shrinks
//!   it), independent of how many cases the suite normally runs.
//!
//! # Writing properties
//!
//! ```
//! use testkit::gen::{self, Gen};
//!
//! testkit::prop! {
//!     cases = 64;
//!
//!     /// Reversing twice is the identity.
//!     fn double_reverse(data in gen::vecs(gen::u8s(..), 0..128)) {
//!         let mut twice = data.clone();
//!         twice.reverse();
//!         twice.reverse();
//!         assert_eq!(twice, data);
//!     }
//! }
//! ```
//!
//! Properties fail by panicking (`assert!`, `assert_eq!`, indexing, …); the
//! harness catches the panic, shrinks the input, and re-panics with the
//! minimal counterexample plus the `TESTKIT_SEED` needed to replay it.

pub mod bench;
pub mod gen;
mod runner;
mod shrink;
mod source;

pub use gen::Gen;
pub use runner::{forall, Config, DEFAULT_SEED};
pub use source::Source;
