//! The choice stream: the single entropy interface generators draw from.
//!
//! In **record** mode a [`Source`] pulls fresh values from
//! [`simkit::Rng`] and logs every draw. In **replay** mode it feeds back a
//! previously recorded (possibly shrunk) stream; draws past the end return
//! zero, which every derived distribution maps to its minimum — so a
//! truncated stream yields the *simplest* value the generator can produce.
//!
//! All derived draws are monotone in the raw `u64`: a smaller draw never
//! produces a larger value. That is what makes stream-level shrinking
//! (halving draws toward zero) shrink the *generated* values too.

use simkit::Rng;

enum Mode<'a> {
    Record { rng: Rng, log: &'a mut Vec<u64> },
    Replay { data: &'a [u64], pos: usize },
}

/// A recording or replaying stream of random choices.
pub struct Source<'a> {
    mode: Mode<'a>,
}

impl<'a> Source<'a> {
    /// A recording source seeded from `seed`; every draw is appended to
    /// `log`.
    pub fn record(seed: u64, log: &'a mut Vec<u64>) -> Self {
        Source {
            mode: Mode::Record {
                rng: Rng::new(seed),
                log,
            },
        }
    }

    /// A replaying source over a recorded stream. Draws past the end of
    /// `data` return `0`.
    pub fn replay(data: &'a [u64]) -> Self {
        Source {
            mode: Mode::Replay { data, pos: 0 },
        }
    }

    /// Next raw choice.
    pub fn next_u64(&mut self) -> u64 {
        match &mut self.mode {
            Mode::Record { rng, log } => {
                let v = rng.next_u64();
                log.push(v);
                v
            }
            Mode::Replay { data, pos } => {
                let v = data.get(*pos).copied().unwrap_or(0);
                *pos += 1;
                v
            }
        }
    }

    /// Uniform value in `[lo, hi]` (inclusive), monotone in the raw draw.
    ///
    /// Uses a single multiply-shift (no rejection): replaying an edited
    /// stream must consume exactly one draw per call, and the ≤ `span`/2⁶⁴
    /// bias is irrelevant for test generation.
    pub fn int_in(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi, "int_in({lo}, {hi})");
        let span = hi.wrapping_sub(lo).wrapping_add(1);
        let x = self.next_u64();
        if span == 0 {
            // Full u64 range.
            return x;
        }
        lo + ((x as u128 * span as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`, monotone in the raw draw.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial; a zero draw yields `false` (the "simple" outcome).
    pub fn weighted_bool(&mut self, p: f64) -> bool {
        1.0 - self.unit_f64() <= p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_then_replay_is_identical() {
        let mut log = Vec::new();
        let a: Vec<u64> = {
            let mut s = Source::record(42, &mut log);
            (0..10).map(|_| s.int_in(0, 999)).collect()
        };
        let b: Vec<u64> = {
            let mut s = Source::replay(&log);
            (0..10).map(|_| s.int_in(0, 999)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn exhausted_replay_yields_minimum() {
        let mut s = Source::replay(&[]);
        assert_eq!(s.int_in(7, 1000), 7);
        assert_eq!(s.unit_f64(), 0.0);
        assert!(!s.weighted_bool(0.99));
    }

    #[test]
    fn int_in_full_range_is_raw() {
        let mut s = Source::replay(&[u64::MAX]);
        assert_eq!(s.int_in(0, u64::MAX), u64::MAX);
    }

    #[test]
    fn int_in_monotone_in_draw() {
        for span in [2u64, 13, 4096, u64::MAX / 2] {
            let mut lo = Source::replay(&[1]);
            let mut hi = Source::replay(&[u64::MAX]);
            assert!(lo.int_in(0, span) <= hi.int_in(0, span));
        }
    }
}
