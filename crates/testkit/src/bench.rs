//! A tiny bench runner for `harness = false` bench binaries.
//!
//! Exposes the subset of the `criterion` API the workspace benches use
//! (`Criterion::benchmark_group`, `sample_size`, `throughput`,
//! `bench_with_input`, `BenchmarkId`, `Throughput`, plus the
//! [`criterion_group!`](crate::criterion_group) /
//! [`criterion_main!`](crate::criterion_main) macros), implemented in ~200
//! lines with no dependencies. Timings are medians over `sample_size`
//! batches, each batch auto-sized to run a few milliseconds.
//!
//! CLI flags (matching the `cargo bench -- …` conventions the benches
//! document):
//!
//! - `--test`: smoke mode — run every routine exactly once and report `ok`
//!   (what CI uses; no timing noise in the logs).
//! - any bare argument: substring filter on `group/id` names.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Per-iteration work declared for throughput reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical items processed per iteration.
    Elements(u64),
}

/// A benchmark identifier: `function` or `function/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter, rendered `name/param`.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// The bench context handed to every registered bench function.
pub struct Criterion {
    filter: Option<String>,
    smoke: bool,
}

impl Criterion {
    /// Builds a context from the process arguments (`--test`, filters).
    pub fn from_args() -> Self {
        let mut filter = None;
        let mut smoke = false;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => smoke = true,
                // Flags cargo/libtest conventionally pass through; ignored.
                "--bench" | "--nocapture" | "-q" | "--quiet" => {}
                other if other.starts_with('-') => {}
                other => filter = Some(other.to_string()),
            }
        }
        Criterion { filter, smoke }
    }

    /// Starts a named group of related measurements.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            c: self,
            name: name.into(),
            sample_size: 10,
            throughput: None,
        }
    }
}

/// A group of measurements sharing a name and settings.
pub struct BenchmarkGroup<'a> {
    c: &'a Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of timed batches per benchmark (min 3).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(3);
        self
    }

    /// Declares per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark over a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        if let Some(filter) = &self.c.filter {
            if !full.contains(filter.as_str()) {
                return self;
            }
        }
        let mut b = Bencher {
            smoke: self.c.smoke,
            sample_size: self.sample_size,
            ns_per_iter: Vec::new(),
        };
        f(&mut b, input);
        b.report(&full, self.throughput);
        self
    }

    /// Runs one benchmark without an input.
    pub fn bench_function<F>(&mut self, id: BenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.bench_with_input(id, &(), |b, ()| f(b))
    }

    /// Ends the group (kept for criterion API parity).
    pub fn finish(self) {}
}

/// Measures one closure; populated by [`Bencher::iter`].
pub struct Bencher {
    smoke: bool,
    sample_size: usize,
    ns_per_iter: Vec<f64>,
}

impl Bencher {
    /// Times `routine`, auto-sizing batches so each one runs ≥ ~2 ms.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        if self.smoke {
            std::hint::black_box(routine());
            return;
        }
        // Calibrate: how many iterations fill the batch target?
        let start = Instant::now();
        std::hint::black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(20));
        let target = Duration::from_millis(2);
        let iters = (target.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

        self.ns_per_iter.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            let elapsed = start.elapsed();
            self.ns_per_iter
                .push(elapsed.as_nanos() as f64 / iters as f64);
        }
    }

    fn report(&mut self, name: &str, throughput: Option<Throughput>) {
        if self.smoke {
            println!("bench {name:<44} ... ok (smoke)");
            return;
        }
        if self.ns_per_iter.is_empty() {
            println!("bench {name:<44} ... no measurement (iter not called)");
            return;
        }
        self.ns_per_iter
            .sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let median = self.ns_per_iter[self.ns_per_iter.len() / 2];
        let min = self.ns_per_iter[0];
        let max = self.ns_per_iter[self.ns_per_iter.len() - 1];
        let thrpt = match throughput {
            Some(Throughput::Bytes(bytes)) => {
                let gib = bytes as f64 / (1u64 << 30) as f64 / (median * 1e-9);
                format!("  {gib:8.3} GiB/s")
            }
            Some(Throughput::Elements(n)) => {
                let rate = n as f64 / (median * 1e-9);
                format!("  {rate:10.0} elem/s")
            }
            None => String::new(),
        };
        println!(
            "bench {name:<44} {:>12}/iter (min {}, max {}){thrpt}",
            fmt_ns(median),
            fmt_ns(min),
            fmt_ns(max),
        );
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.0} ns")
    } else if ns < 1e6 {
        format!("{:.2} us", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Registers bench functions under one group entry point (criterion-style).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::bench::Criterion::from_args();
            $($target(&mut c);)+
        }
    };
}

/// Emits `main` for a `harness = false` bench binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_once() {
        let mut calls = 0u32;
        let mut b = Bencher {
            smoke: true,
            sample_size: 10,
            ns_per_iter: Vec::new(),
        };
        b.iter(|| calls += 1);
        assert_eq!(calls, 1);
    }

    #[test]
    fn measurement_collects_samples() {
        let mut b = Bencher {
            smoke: false,
            sample_size: 3,
            ns_per_iter: Vec::new(),
        };
        b.iter(|| std::hint::black_box(1 + 1));
        assert_eq!(b.ns_per_iter.len(), 3);
        assert!(b.ns_per_iter.iter().all(|&ns| ns > 0.0));
    }

    #[test]
    fn ids_render_like_criterion() {
        assert_eq!(BenchmarkId::new("compress", "xml").id, "compress/xml");
        assert_eq!(BenchmarkId::from_parameter(42).id, "42");
    }
}
