//! Generator combinators over the choice stream.
//!
//! A [`Gen`] deterministically maps a [`Source`] to a value. Generators are
//! stateless (`sample(&self, ..)`), so one generator can produce every case
//! of a run and be replayed during shrinking.

use crate::source::Source;
use std::fmt::Debug;
use std::ops::{Bound, RangeBounds};

/// A value generator driven by the choice stream.
pub trait Gen {
    /// The generated value type.
    type Value: Debug;

    /// Draws one value.
    fn sample(&self, src: &mut Source<'_>) -> Self::Value;

    /// Maps generated values through `f` (shrinking still happens on the
    /// underlying choices, so constraints survive the mapping).
    fn map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        U: Debug,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erases the generator (for [`one_of!`](crate::one_of) and other
    /// heterogeneous collections).
    fn boxed(self) -> BoxGen<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxGen(Box::new(self))
    }
}

/// A boxed, type-erased generator.
pub struct BoxGen<T>(Box<dyn Gen<Value = T>>);

impl<T: Debug> Gen for BoxGen<T> {
    type Value = T;
    fn sample(&self, src: &mut Source<'_>) -> T {
        self.0.sample(src)
    }
}

/// Picks one of several same-typed generators, uniformly.
///
/// Prefer the [`one_of!`](crate::one_of) macro; a zero draw selects the
/// *first* alternative, so list the simplest generator first.
pub struct OneOf<T> {
    gens: Vec<BoxGen<T>>,
}

impl<T: Debug> OneOf<T> {
    /// A uniform choice over `gens`.
    ///
    /// # Panics
    ///
    /// Panics if `gens` is empty.
    pub fn new(gens: Vec<BoxGen<T>>) -> Self {
        assert!(!gens.is_empty(), "one_of over no generators");
        OneOf { gens }
    }
}

impl<T: Debug> Gen for OneOf<T> {
    type Value = T;
    fn sample(&self, src: &mut Source<'_>) -> T {
        let idx = src.int_in(0, self.gens.len() as u64 - 1) as usize;
        self.gens[idx].sample(src)
    }
}

/// Uniform choice over same-typed generators; shrinks toward the first.
///
/// ```
/// use testkit::gen::{self, Gen};
/// let g = testkit::one_of![gen::just(0u64), gen::u64s(10..20)];
/// ```
#[macro_export]
macro_rules! one_of {
    ($($g:expr),+ $(,)?) => {
        $crate::gen::OneOf::new(vec![$($crate::gen::Gen::boxed($g)),+])
    };
}

/// See [`Gen::map`].
pub struct Map<G, F> {
    inner: G,
    f: F,
}

impl<G, U, F> Gen for Map<G, F>
where
    G: Gen,
    U: Debug,
    F: Fn(G::Value) -> U,
{
    type Value = U;
    fn sample(&self, src: &mut Source<'_>) -> U {
        (self.f)(self.inner.sample(src))
    }
}

/// Always produces a clone of one value (consumes no choices).
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Gen for Just<T> {
    type Value = T;
    fn sample(&self, _src: &mut Source<'_>) -> T {
        self.0.clone()
    }
}

/// A constant generator.
pub fn just<T: Clone + Debug>(v: T) -> Just<T> {
    Just(v)
}

/// Uniformly picks one of the given values; shrinks toward the first.
pub struct Choice<T: Clone + Debug> {
    items: Vec<T>,
}

impl<T: Clone + Debug> Gen for Choice<T> {
    type Value = T;
    fn sample(&self, src: &mut Source<'_>) -> T {
        let idx = src.int_in(0, self.items.len() as u64 - 1) as usize;
        self.items[idx].clone()
    }
}

/// A uniform choice over explicit values (shrinks toward the first).
///
/// # Panics
///
/// Panics if `items` is empty.
pub fn choice<T: Clone + Debug>(items: impl Into<Vec<T>>) -> Choice<T> {
    let items = items.into();
    assert!(!items.is_empty(), "choice over no values");
    Choice { items }
}

fn u64_bounds(r: impl RangeBounds<u64>) -> (u64, u64) {
    let lo = match r.start_bound() {
        Bound::Included(&v) => v,
        Bound::Excluded(&v) => v + 1,
        Bound::Unbounded => 0,
    };
    let hi = match r.end_bound() {
        Bound::Included(&v) => v,
        Bound::Excluded(&v) => v.checked_sub(1).expect("empty range"),
        Bound::Unbounded => u64::MAX,
    };
    assert!(lo <= hi, "empty range {lo}..={hi}");
    (lo, hi)
}

macro_rules! int_gen {
    ($(#[$doc:meta])* $name:ident, $ty:ty, $struct_name:ident) => {
        $(#[$doc])*
        #[derive(Clone, Copy, Debug)]
        pub struct $struct_name {
            lo: u64,
            hi: u64,
        }

        impl Gen for $struct_name {
            type Value = $ty;
            fn sample(&self, src: &mut Source<'_>) -> $ty {
                src.int_in(self.lo, self.hi) as $ty
            }
        }

        $(#[$doc])*
        pub fn $name(r: impl RangeBounds<$ty>) -> $struct_name {
            let lo = match r.start_bound() {
                Bound::Included(&v) => v as u64,
                Bound::Excluded(&v) => v as u64 + 1,
                Bound::Unbounded => 0,
            };
            let hi = match r.end_bound() {
                Bound::Included(&v) => v as u64,
                Bound::Excluded(&v) => (v as u64).checked_sub(1).expect("empty range"),
                Bound::Unbounded => <$ty>::MAX as u64,
            };
            assert!(lo <= hi, "empty range {lo}..={hi}");
            $struct_name { lo, hi }
        }
    };
}

int_gen!(
    /// Uniform `u64` in the range; shrinks toward the lower bound.
    u64s, u64, U64s
);
int_gen!(
    /// Uniform `u32` in the range; shrinks toward the lower bound.
    u32s, u32, U32s
);
int_gen!(
    /// Uniform `u16` in the range; shrinks toward the lower bound.
    u16s, u16, U16s
);
int_gen!(
    /// Uniform `u8` in the range; shrinks toward the lower bound.
    u8s, u8, U8s
);
int_gen!(
    /// Uniform `usize` in the range; shrinks toward the lower bound.
    usizes, usize, Usizes
);

/// Uniform `f64` in `[lo, hi)`; shrinks toward `lo`.
#[derive(Clone, Copy, Debug)]
pub struct F64s {
    lo: f64,
    hi: f64,
}

impl Gen for F64s {
    type Value = f64;
    fn sample(&self, src: &mut Source<'_>) -> f64 {
        self.lo + src.unit_f64() * (self.hi - self.lo)
    }
}

/// Uniform `f64` in `[lo, hi)`.
///
/// # Panics
///
/// Panics unless `lo < hi` and both are finite.
pub fn f64s(r: std::ops::Range<f64>) -> F64s {
    assert!(
        r.start < r.end && r.start.is_finite() && r.end.is_finite(),
        "bad f64 range {}..{}",
        r.start,
        r.end
    );
    F64s {
        lo: r.start,
        hi: r.end,
    }
}

/// Booleans; shrinks toward `false`.
#[derive(Clone, Copy, Debug)]
pub struct Bools;

impl Gen for Bools {
    type Value = bool;
    fn sample(&self, src: &mut Source<'_>) -> bool {
        src.weighted_bool(0.5)
    }
}

/// A fair boolean (shrinks toward `false`).
pub fn bools() -> Bools {
    Bools
}

/// Vectors of generated elements; shrinks toward the minimum length and
/// element-wise toward simpler elements.
pub struct VecGen<G> {
    elem: G,
    min: u64,
    max: u64,
}

impl<G: Gen> Gen for VecGen<G> {
    type Value = Vec<G::Value>;
    fn sample(&self, src: &mut Source<'_>) -> Vec<G::Value> {
        let len = src.int_in(self.min, self.max) as usize;
        (0..len).map(|_| self.elem.sample(src)).collect()
    }
}

/// A vector whose length is uniform in `len` and whose elements come from
/// `elem`.
pub fn vecs<G: Gen>(elem: G, len: impl RangeBounds<u64>) -> VecGen<G> {
    let (min, max) = u64_bounds(len);
    VecGen { elem, min, max }
}

/// Arbitrary byte vectors with length in `len` (shorthand for
/// `vecs(u8s(..), len)`).
pub fn bytes(len: impl RangeBounds<u64>) -> VecGen<U8s> {
    vecs(u8s(..), len)
}

macro_rules! tuple_gen {
    ($($g:ident => $v:ident),+) => {
        impl<$($g: Gen),+> Gen for ($($g,)+) {
            type Value = ($($g::Value,)+);
            fn sample(&self, src: &mut Source<'_>) -> Self::Value {
                let ($($v,)+) = self;
                ($($v.sample(src),)+)
            }
        }
    };
}

tuple_gen!(A => a);
tuple_gen!(A => a, B => b);
tuple_gen!(A => a, B => b, C => c);
tuple_gen!(A => a, B => b, C => c, D => d);
tuple_gen!(A => a, B => b, C => c, D => d, E => e);
tuple_gen!(A => a, B => b, C => c, D => d, E => e, F => f);
tuple_gen!(A => a, B => b, C => c, D => d, E => e, F => f, G => g);
tuple_gen!(A => a, B => b, C => c, D => d, E => e, F => f, G => g, H => h);

#[cfg(test)]
mod tests {
    use super::*;

    fn take<G: Gen>(g: &G, seed: u64) -> G::Value {
        let mut log = Vec::new();
        let mut src = Source::record(seed, &mut log);
        g.sample(&mut src)
    }

    #[test]
    fn ranges_respected() {
        for seed in 0..200 {
            let v = take(&u64s(10..20), seed);
            assert!((10..20).contains(&v));
            let b = take(&bytes(3..=5), seed);
            assert!((3..=5).contains(&b.len()));
            let f = take(&f64s(-1.0..1.0), seed);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn replay_of_empty_stream_is_minimal() {
        let mut src = Source::replay(&[]);
        let g = (u64s(5..100), vecs(u8s(1..=255), 2..9), bools());
        let (n, v, b) = g.sample(&mut src);
        assert_eq!(n, 5);
        assert_eq!(v, vec![1, 1]);
        assert!(!b);
    }

    #[test]
    fn map_and_one_of_compose() {
        let g = crate::one_of![
            just(Vec::new()),
            vecs(u8s(..), 1..4).map(|v| v.iter().map(|x| x ^ 0xFF).collect::<Vec<u8>>()),
        ];
        for seed in 0..50 {
            let v = take(&g, seed);
            assert!(v.len() < 4);
        }
    }

    #[test]
    fn choice_picks_listed_values() {
        let g = choice(vec![256usize, 700, 4096]);
        for seed in 0..50 {
            assert!([256, 700, 4096].contains(&take(&g, seed)));
        }
    }
}
