//! Bounded exponential shrinking over recorded choice streams.
//!
//! Candidates are produced by two passes repeated to a fixpoint (or until
//! the attempt budget runs out):
//!
//! 1. **Chunk deletion** — remove windows of the stream, with window sizes
//!    halving from `len/2` down to 1. Deleting choices shortens generated
//!    collections and drops whole operations from op-sequence generators.
//! 2. **Draw reduction** — for each position, try zero, then exponentially
//!    smaller right-shifts of the draw (`v >> 32`, `v >> 16`, …, `v - 1`).
//!    Since every derived distribution is monotone in the raw draw, this
//!    moves generated values toward their range minimum.
//!
//! A candidate is adopted only if the property still fails on it, so the
//! final stream is a locally minimal failing input.

/// Shrinks `choices` while `fails` keeps returning `true`, spending at most
/// `budget` property evaluations. Returns the smallest failing stream found.
pub fn shrink(choices: Vec<u64>, mut fails: impl FnMut(&[u64]) -> bool, budget: u32) -> Vec<u64> {
    let mut best = choices;
    let mut spent = 0u32;
    let mut try_candidate = |cand: &[u64], spent: &mut u32| -> bool {
        if *spent >= budget {
            return false;
        }
        *spent += 1;
        fails(cand)
    };

    loop {
        let mut progressed = false;

        // Pass 1: delete windows, exponentially shrinking the window size.
        let mut window = (best.len() / 2).max(1);
        loop {
            let mut i = 0;
            while i + window <= best.len() && spent < budget {
                let mut cand = Vec::with_capacity(best.len() - window);
                cand.extend_from_slice(&best[..i]);
                cand.extend_from_slice(&best[i + window..]);
                if try_candidate(&cand, &mut spent) {
                    best = cand;
                    progressed = true;
                    // Same position now holds fresh content; retry it.
                } else {
                    i += 1;
                }
            }
            if window == 1 {
                break;
            }
            window /= 2;
        }

        // Pass 2: reduce individual draws toward zero.
        for i in 0..best.len() {
            if spent >= budget {
                break;
            }
            let orig = best[i];
            if orig == 0 {
                continue;
            }
            for cand_val in reduction_ladder(orig) {
                let mut cand = best.clone();
                cand[i] = cand_val;
                if try_candidate(&cand, &mut spent) {
                    best = cand;
                    progressed = true;
                    break;
                }
            }
        }

        if !progressed || spent >= budget {
            return best;
        }
    }
}

/// Candidate replacements for one draw, simplest first.
fn reduction_ladder(v: u64) -> impl Iterator<Item = u64> {
    let mut ladder = vec![0u64];
    for shift in [32u32, 16, 8, 4, 2, 1] {
        let cand = v >> shift;
        if cand != 0 && !ladder.contains(&cand) {
            ladder.push(cand);
        }
    }
    if v > 0 && !ladder.contains(&(v - 1)) {
        ladder.push(v - 1);
    }
    ladder.into_iter()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shrinks_to_empty_when_everything_fails() {
        let out = shrink(vec![9, 8, 7, 6], |_| true, 1000);
        assert!(out.is_empty());
    }

    #[test]
    fn keeps_failure_invariant() {
        // Property fails whenever the stream sums to >= 100.
        let out = shrink(vec![90, 90, 90, 90], |c| c.iter().sum::<u64>() >= 100, 10_000);
        assert!(out.iter().sum::<u64>() >= 100);
        // Locally minimal-ish: far below the original 360.
        assert!(out.iter().sum::<u64>() <= 200, "{out:?}");
    }

    #[test]
    fn respects_budget() {
        let mut calls = 0;
        let _ = shrink(vec![5; 64], |_| {
            calls += 1;
            true
        }, 10);
        assert!(calls <= 10);
    }

    #[test]
    fn ladder_is_descending_ish_and_starts_at_zero() {
        let l: Vec<u64> = reduction_ladder(u64::MAX).collect();
        assert_eq!(l[0], 0);
        assert!(l.contains(&(u64::MAX - 1)));
    }
}
