//! The property runner: case loop, failure capture, shrinking, replay.

use crate::gen::Gen;
use crate::shrink::shrink;
use crate::source::Source;
use std::cell::Cell;
use std::panic::{self, AssertUnwindSafe};
use std::sync::Once;

/// The fixed default base seed: runs are deterministic across machines and
/// invocations unless `TESTKIT_SEED` overrides a specific case.
pub const DEFAULT_SEED: u64 = 0x5eed_1e57_ba5e_ca5e;

/// Runner configuration.
#[derive(Clone, Copy, Debug)]
pub struct Config {
    /// Number of generated cases per property.
    pub cases: u32,
    /// Maximum property evaluations spent shrinking one failure.
    pub shrink_budget: u32,
    /// Base seed; case `i` runs on a seed derived from it.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            cases: 128,
            shrink_budget: 4096,
            seed: DEFAULT_SEED,
        }
    }
}

impl Config {
    /// Overrides the number of cases.
    pub fn with_cases(mut self, cases: u32) -> Self {
        self.cases = cases;
        self
    }

    /// Overrides the shrink budget.
    pub fn with_shrink_budget(mut self, budget: u32) -> Self {
        self.shrink_budget = budget;
        self
    }
}

/// Derives the per-case seed from the base seed (SplitMix64 finalizer, so
/// neighbouring cases get unrelated streams).
fn case_seed(base: u64, case: u32) -> u64 {
    let mut z = base ^ (case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

thread_local! {
    static QUIET: Cell<bool> = const { Cell::new(false) };
}

static HOOK: Once = Once::new();

/// Installs (once) a panic hook that suppresses output while this thread is
/// evaluating a property. Shrinking runs the property hundreds of times;
/// without this, every failing attempt would print a backtrace.
fn install_quiet_hook() {
    HOOK.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if !QUIET.with(Cell::get) {
                prev(info);
            }
        }));
    });
}

/// Runs the property on one value, capturing a panic as `Some(message)`.
fn run_prop<V>(prop: &impl Fn(V), value: V) -> Option<String> {
    install_quiet_hook();
    let prev = QUIET.with(|q| q.replace(true));
    let result = panic::catch_unwind(AssertUnwindSafe(|| prop(value)));
    QUIET.with(|q| q.set(prev));
    match result {
        Ok(()) => None,
        Err(payload) => Some(payload_message(payload.as_ref())),
    }
}

fn payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Checks `prop` against `cfg.cases` values drawn from `gen`.
///
/// On failure the input is shrunk (replaying edited choice streams through
/// the same generator) and the run panics with the minimal counterexample,
/// the original failure, and the `TESTKIT_SEED` that replays the case.
///
/// Setting `TESTKIT_SEED=<seed>` (decimal or `0x…` hex) replays exactly one
/// case instead of the whole run.
///
/// # Panics
///
/// Panics if the property fails for any generated value.
pub fn forall<G: Gen>(cfg: &Config, gen: G, prop: impl Fn(G::Value)) {
    if let Some(seed) = seed_from_env() {
        run_case(cfg, &gen, &prop, seed, "TESTKIT_SEED replay");
        return;
    }
    for case in 0..cfg.cases {
        let seed = case_seed(cfg.seed, case);
        run_case(cfg, &gen, &prop, seed, &format!("case {case}"));
    }
}

fn seed_from_env() -> Option<u64> {
    let raw = std::env::var("TESTKIT_SEED").ok()?;
    let raw = raw.trim();
    let parsed = if let Some(hex) = raw.strip_prefix("0x") {
        u64::from_str_radix(hex, 16)
    } else {
        raw.parse()
    };
    match parsed {
        Ok(seed) => Some(seed),
        Err(_) => panic!("unparseable TESTKIT_SEED: {raw:?}"),
    }
}

fn run_case<G: Gen>(
    cfg: &Config,
    gen: &G,
    prop: &impl Fn(G::Value),
    seed: u64,
    label: &str,
) {
    let mut log = Vec::new();
    let value = gen.sample(&mut Source::record(seed, &mut log));
    let Some(original_failure) = run_prop(prop, value) else {
        return;
    };

    // Reproduce the original value for the report before shrinking edits
    // the stream.
    let original = gen.sample(&mut Source::replay(&log));
    let minimal_stream = shrink(
        log,
        |stream| run_prop(prop, gen.sample(&mut Source::replay(stream))).is_some(),
        cfg.shrink_budget,
    );
    let minimal = gen.sample(&mut Source::replay(&minimal_stream));
    let minimal_failure =
        run_prop(prop, gen.sample(&mut Source::replay(&minimal_stream)))
            .unwrap_or_else(|| original_failure.clone());

    panic!(
        "property failed ({label}, seed {seed:#x})\n\
         minimal counterexample: {minimal:?}\n\
         failure: {minimal_failure}\n\
         original input: {original:?}\n\
         original failure: {original_failure}\n\
         replay with: TESTKIT_SEED={seed:#x} cargo test <this test>"
    );
}

/// Declares property tests.
///
/// ```ignore
/// testkit::prop! {
///     cases = 256;                       // optional, applies to all fns
///
///     fn roundtrip(data in gen::bytes(0..4096)) {
///         assert_eq!(decode(&encode(&data)), data);
///     }
/// }
/// ```
///
/// Each `fn` becomes a `#[test]` that calls [`forall`] with the bindings
/// drawn as one tuple, so multi-argument properties shrink jointly.
#[macro_export]
macro_rules! prop {
    (@cfg $cfg:block) => {};
    (@cfg $cfg:block
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $gen:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            let __cfg: $crate::Config = $cfg;
            $crate::forall(&__cfg, ($($gen,)+), move |($($arg,)+)| $body);
        }
        $crate::prop!(@cfg $cfg $($rest)*);
    };
    (cases = $cases:expr; $($rest:tt)*) => {
        $crate::prop!(@cfg { $crate::Config::default().with_cases($cases) } $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::prop!(@cfg { $crate::Config::default() } $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn passing_property_is_silent() {
        forall(&Config::default(), gen::u64s(0..100), |v| {
            assert!(v < 100);
        });
    }

    #[test]
    fn failing_property_reports_minimal_counterexample() {
        install_quiet_hook();
        let prev = QUIET.with(|q| q.replace(true));
        let err = panic::catch_unwind(|| {
            forall(
                &Config::default(),
                gen::vecs(gen::u64s(0..1000), 0..64),
                |v| {
                    let total: u64 = v.iter().sum();
                    assert!(total < 700, "sum {total}");
                },
            );
        })
        .expect_err("property must fail");
        QUIET.with(|q| q.set(prev));
        let msg = super::payload_message(err.as_ref());
        assert!(msg.contains("minimal counterexample"), "{msg}");
        assert!(msg.contains("TESTKIT_SEED="), "{msg}");
        // The shrunk witness keeps failing, so its sum stays >= 700; a
        // one-element vector [x] with x < 1000 can't reach it, so the
        // minimum has >= 1 element — just check the shrink kept a witness.
        assert!(msg.contains("failure: sum"), "{msg}");
    }

    #[test]
    fn same_seed_same_cases() {
        let collect = || {
            let mut seen = Vec::new();
            let mut log = Vec::new();
            for case in 0..10 {
                log.clear();
                let seed = case_seed(DEFAULT_SEED, case);
                seen.push(gen::bytes(0..32).sample(&mut Source::record(seed, &mut log)));
            }
            seen
        };
        assert_eq!(collect(), collect());
    }

    prop! {
        cases = 32;

        /// The macro front-end compiles and runs: tuples destructure.
        fn macro_front_end(a in gen::u8s(1..=9), b in gen::vecs(gen::bools(), 0..4)) {
            assert!(a >= 1 && a <= 9);
            assert!(b.len() < 4);
        }
    }
}
