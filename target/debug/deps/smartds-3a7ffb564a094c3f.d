/root/repo/target/debug/deps/smartds-3a7ffb564a094c3f.d: crates/core/src/lib.rs crates/core/src/agent.rs crates/core/src/api.rs crates/core/src/cluster.rs crates/core/src/design.rs crates/core/src/fabric.rs crates/core/src/metrics.rs crates/core/src/plan.rs crates/core/src/policy.rs crates/core/src/qos.rs crates/core/src/scaleup.rs crates/core/src/workload.rs

/root/repo/target/debug/deps/libsmartds-3a7ffb564a094c3f.rlib: crates/core/src/lib.rs crates/core/src/agent.rs crates/core/src/api.rs crates/core/src/cluster.rs crates/core/src/design.rs crates/core/src/fabric.rs crates/core/src/metrics.rs crates/core/src/plan.rs crates/core/src/policy.rs crates/core/src/qos.rs crates/core/src/scaleup.rs crates/core/src/workload.rs

/root/repo/target/debug/deps/libsmartds-3a7ffb564a094c3f.rmeta: crates/core/src/lib.rs crates/core/src/agent.rs crates/core/src/api.rs crates/core/src/cluster.rs crates/core/src/design.rs crates/core/src/fabric.rs crates/core/src/metrics.rs crates/core/src/plan.rs crates/core/src/policy.rs crates/core/src/qos.rs crates/core/src/scaleup.rs crates/core/src/workload.rs

crates/core/src/lib.rs:
crates/core/src/agent.rs:
crates/core/src/api.rs:
crates/core/src/cluster.rs:
crates/core/src/design.rs:
crates/core/src/fabric.rs:
crates/core/src/metrics.rs:
crates/core/src/plan.rs:
crates/core/src/policy.rs:
crates/core/src/qos.rs:
crates/core/src/scaleup.rs:
crates/core/src/workload.rs:
