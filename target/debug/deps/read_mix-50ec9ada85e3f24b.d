/root/repo/target/debug/deps/read_mix-50ec9ada85e3f24b.d: tests/tests/read_mix.rs

/root/repo/target/debug/deps/read_mix-50ec9ada85e3f24b: tests/tests/read_mix.rs

tests/tests/read_mix.rs:
