/root/repo/target/debug/deps/testkit-e30e0e3f620c6fed.d: crates/testkit/src/lib.rs crates/testkit/src/bench.rs crates/testkit/src/gen.rs crates/testkit/src/runner.rs crates/testkit/src/shrink.rs crates/testkit/src/source.rs

/root/repo/target/debug/deps/libtestkit-e30e0e3f620c6fed.rlib: crates/testkit/src/lib.rs crates/testkit/src/bench.rs crates/testkit/src/gen.rs crates/testkit/src/runner.rs crates/testkit/src/shrink.rs crates/testkit/src/source.rs

/root/repo/target/debug/deps/libtestkit-e30e0e3f620c6fed.rmeta: crates/testkit/src/lib.rs crates/testkit/src/bench.rs crates/testkit/src/gen.rs crates/testkit/src/runner.rs crates/testkit/src/shrink.rs crates/testkit/src/source.rs

crates/testkit/src/lib.rs:
crates/testkit/src/bench.rs:
crates/testkit/src/gen.rs:
crates/testkit/src/runner.rs:
crates/testkit/src/shrink.rs:
crates/testkit/src/source.rs:
