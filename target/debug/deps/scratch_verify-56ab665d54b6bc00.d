/root/repo/target/debug/deps/scratch_verify-56ab665d54b6bc00.d: crates/testkit/tests/scratch_verify.rs

/root/repo/target/debug/deps/scratch_verify-56ab665d54b6bc00: crates/testkit/tests/scratch_verify.rs

crates/testkit/tests/scratch_verify.rs:
