/root/repo/target/debug/deps/system_tests-bfb95dde2cf38b1f.d: tests/lib.rs

/root/repo/target/debug/deps/system_tests-bfb95dde2cf38b1f: tests/lib.rs

tests/lib.rs:
