/root/repo/target/debug/deps/lz4_codec-489168e9f378afdc.d: crates/bench/benches/lz4_codec.rs

/root/repo/target/debug/deps/lz4_codec-489168e9f378afdc: crates/bench/benches/lz4_codec.rs

crates/bench/benches/lz4_codec.rs:
