/root/repo/target/debug/deps/blockstore-8accb6fb18745110.d: crates/blockstore/src/lib.rs crates/blockstore/src/chunk.rs crates/blockstore/src/header.rs crates/blockstore/src/mapping.rs crates/blockstore/src/replica.rs crates/blockstore/src/scrub.rs crates/blockstore/src/server.rs

/root/repo/target/debug/deps/libblockstore-8accb6fb18745110.rlib: crates/blockstore/src/lib.rs crates/blockstore/src/chunk.rs crates/blockstore/src/header.rs crates/blockstore/src/mapping.rs crates/blockstore/src/replica.rs crates/blockstore/src/scrub.rs crates/blockstore/src/server.rs

/root/repo/target/debug/deps/libblockstore-8accb6fb18745110.rmeta: crates/blockstore/src/lib.rs crates/blockstore/src/chunk.rs crates/blockstore/src/header.rs crates/blockstore/src/mapping.rs crates/blockstore/src/replica.rs crates/blockstore/src/scrub.rs crates/blockstore/src/server.rs

crates/blockstore/src/lib.rs:
crates/blockstore/src/chunk.rs:
crates/blockstore/src/header.rs:
crates/blockstore/src/mapping.rs:
crates/blockstore/src/replica.rs:
crates/blockstore/src/scrub.rs:
crates/blockstore/src/server.rs:
