/root/repo/target/debug/deps/scrub_props-86bb941e58400470.d: crates/blockstore/tests/scrub_props.rs

/root/repo/target/debug/deps/scrub_props-86bb941e58400470: crates/blockstore/tests/scrub_props.rs

crates/blockstore/tests/scrub_props.rs:
