/root/repo/target/debug/deps/blockstore-13dd48d7f0bec07a.d: crates/blockstore/src/lib.rs crates/blockstore/src/chunk.rs crates/blockstore/src/header.rs crates/blockstore/src/mapping.rs crates/blockstore/src/replica.rs crates/blockstore/src/scrub.rs crates/blockstore/src/server.rs

/root/repo/target/debug/deps/blockstore-13dd48d7f0bec07a: crates/blockstore/src/lib.rs crates/blockstore/src/chunk.rs crates/blockstore/src/header.rs crates/blockstore/src/mapping.rs crates/blockstore/src/replica.rs crates/blockstore/src/scrub.rs crates/blockstore/src/server.rs

crates/blockstore/src/lib.rs:
crates/blockstore/src/chunk.rs:
crates/blockstore/src/header.rs:
crates/blockstore/src/mapping.rs:
crates/blockstore/src/replica.rs:
crates/blockstore/src/scrub.rs:
crates/blockstore/src/server.rs:
