/root/repo/target/debug/deps/lz4kit-a7b931a9ff14345b.d: crates/lz4kit/src/lib.rs crates/lz4kit/src/compress.rs crates/lz4kit/src/decompress.rs crates/lz4kit/src/error.rs crates/lz4kit/src/frame.rs crates/lz4kit/src/xxhash.rs

/root/repo/target/debug/deps/lz4kit-a7b931a9ff14345b: crates/lz4kit/src/lib.rs crates/lz4kit/src/compress.rs crates/lz4kit/src/decompress.rs crates/lz4kit/src/error.rs crates/lz4kit/src/frame.rs crates/lz4kit/src/xxhash.rs

crates/lz4kit/src/lib.rs:
crates/lz4kit/src/compress.rs:
crates/lz4kit/src/decompress.rs:
crates/lz4kit/src/error.rs:
crates/lz4kit/src/frame.rs:
crates/lz4kit/src/xxhash.rs:
