/root/repo/target/debug/deps/frame_props-552498e995d438f8.d: crates/lz4kit/tests/frame_props.rs

/root/repo/target/debug/deps/frame_props-552498e995d438f8: crates/lz4kit/tests/frame_props.rs

crates/lz4kit/tests/frame_props.rs:
