/root/repo/target/debug/deps/ablation_dictionary-2171c526f06538e1.d: crates/bench/benches/ablation_dictionary.rs

/root/repo/target/debug/deps/ablation_dictionary-2171c526f06538e1: crates/bench/benches/ablation_dictionary.rs

crates/bench/benches/ablation_dictionary.rs:
