/root/repo/target/debug/deps/simkit-c4cde79d531bd2bb.d: crates/simkit/src/lib.rs crates/simkit/src/bytes.rs crates/simkit/src/engine.rs crates/simkit/src/fluid.rs crates/simkit/src/hist.rs crates/simkit/src/json.rs crates/simkit/src/meter.rs crates/simkit/src/rng.rs crates/simkit/src/server.rs crates/simkit/src/time.rs

/root/repo/target/debug/deps/simkit-c4cde79d531bd2bb: crates/simkit/src/lib.rs crates/simkit/src/bytes.rs crates/simkit/src/engine.rs crates/simkit/src/fluid.rs crates/simkit/src/hist.rs crates/simkit/src/json.rs crates/simkit/src/meter.rs crates/simkit/src/rng.rs crates/simkit/src/server.rs crates/simkit/src/time.rs

crates/simkit/src/lib.rs:
crates/simkit/src/bytes.rs:
crates/simkit/src/engine.rs:
crates/simkit/src/fluid.rs:
crates/simkit/src/hist.rs:
crates/simkit/src/json.rs:
crates/simkit/src/meter.rs:
crates/simkit/src/rng.rs:
crates/simkit/src/server.rs:
crates/simkit/src/time.rs:
