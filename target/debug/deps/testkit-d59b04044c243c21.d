/root/repo/target/debug/deps/testkit-d59b04044c243c21.d: crates/testkit/src/lib.rs crates/testkit/src/bench.rs crates/testkit/src/gen.rs crates/testkit/src/runner.rs crates/testkit/src/shrink.rs crates/testkit/src/source.rs

/root/repo/target/debug/deps/testkit-d59b04044c243c21: crates/testkit/src/lib.rs crates/testkit/src/bench.rs crates/testkit/src/gen.rs crates/testkit/src/runner.rs crates/testkit/src/shrink.rs crates/testkit/src/source.rs

crates/testkit/src/lib.rs:
crates/testkit/src/bench.rs:
crates/testkit/src/gen.rs:
crates/testkit/src/runner.rs:
crates/testkit/src/shrink.rs:
crates/testkit/src/source.rs:
