/root/repo/target/debug/deps/proptests-cbf886dfda6ee727.d: crates/lz4kit/tests/proptests.rs

/root/repo/target/debug/deps/proptests-cbf886dfda6ee727: crates/lz4kit/tests/proptests.rs

crates/lz4kit/tests/proptests.rs:
