/root/repo/target/debug/deps/cpu_baseline-1577ea753a49cfbd.d: examples/cpu_baseline.rs

/root/repo/target/debug/deps/cpu_baseline-1577ea753a49cfbd: examples/cpu_baseline.rs

examples/cpu_baseline.rs:
