/root/repo/target/debug/deps/ablation_compressibility-dfc19c42565b21c9.d: crates/bench/benches/ablation_compressibility.rs

/root/repo/target/debug/deps/ablation_compressibility-dfc19c42565b21c9: crates/bench/benches/ablation_compressibility.rs

crates/bench/benches/ablation_compressibility.rs:
