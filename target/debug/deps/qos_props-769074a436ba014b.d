/root/repo/target/debug/deps/qos_props-769074a436ba014b.d: crates/core/tests/qos_props.rs

/root/repo/target/debug/deps/qos_props-769074a436ba014b: crates/core/tests/qos_props.rs

crates/core/tests/qos_props.rs:
