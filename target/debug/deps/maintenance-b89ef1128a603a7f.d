/root/repo/target/debug/deps/maintenance-b89ef1128a603a7f.d: tests/tests/maintenance.rs

/root/repo/target/debug/deps/maintenance-b89ef1128a603a7f: tests/tests/maintenance.rs

tests/tests/maintenance.rs:
