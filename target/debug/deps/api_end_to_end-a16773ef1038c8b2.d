/root/repo/target/debug/deps/api_end_to_end-a16773ef1038c8b2.d: tests/tests/api_end_to_end.rs

/root/repo/target/debug/deps/api_end_to_end-a16773ef1038c8b2: tests/tests/api_end_to_end.rs

tests/tests/api_end_to_end.rs:
