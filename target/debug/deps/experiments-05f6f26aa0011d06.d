/root/repo/target/debug/deps/experiments-05f6f26aa0011d06.d: crates/bench/src/bin/experiments.rs

/root/repo/target/debug/deps/experiments-05f6f26aa0011d06: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
