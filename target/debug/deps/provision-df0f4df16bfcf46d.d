/root/repo/target/debug/deps/provision-df0f4df16bfcf46d.d: examples/provision.rs

/root/repo/target/debug/deps/provision-df0f4df16bfcf46d: examples/provision.rs

examples/provision.rs:
