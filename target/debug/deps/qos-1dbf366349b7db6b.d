/root/repo/target/debug/deps/qos-1dbf366349b7db6b.d: tests/tests/qos.rs

/root/repo/target/debug/deps/qos-1dbf366349b7db6b: tests/tests/qos.rs

tests/tests/qos.rs:
