/root/repo/target/debug/deps/fig7_write_path-3b92d946b0aded35.d: crates/bench/benches/fig7_write_path.rs

/root/repo/target/debug/deps/fig7_write_path-3b92d946b0aded35: crates/bench/benches/fig7_write_path.rs

crates/bench/benches/fig7_write_path.rs:
