/root/repo/target/debug/deps/fluid_props-1cb6e9376bcfca36.d: crates/simkit/tests/fluid_props.rs

/root/repo/target/debug/deps/fluid_props-1cb6e9376bcfca36: crates/simkit/tests/fluid_props.rs

crates/simkit/tests/fluid_props.rs:
