/root/repo/target/debug/deps/cold_archive-1ccdadd9a819f7a9.d: examples/cold_archive.rs

/root/repo/target/debug/deps/cold_archive-1ccdadd9a819f7a9: examples/cold_archive.rs

examples/cold_archive.rs:
