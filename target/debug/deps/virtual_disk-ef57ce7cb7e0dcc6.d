/root/repo/target/debug/deps/virtual_disk-ef57ce7cb7e0dcc6.d: examples/virtual_disk.rs

/root/repo/target/debug/deps/virtual_disk-ef57ce7cb7e0dcc6: examples/virtual_disk.rs

examples/virtual_disk.rs:
