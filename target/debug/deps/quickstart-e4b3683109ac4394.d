/root/repo/target/debug/deps/quickstart-e4b3683109ac4394.d: examples/quickstart.rs

/root/repo/target/debug/deps/quickstart-e4b3683109ac4394: examples/quickstart.rs

examples/quickstart.rs:
