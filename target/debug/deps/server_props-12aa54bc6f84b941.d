/root/repo/target/debug/deps/server_props-12aa54bc6f84b941.d: crates/simkit/tests/server_props.rs

/root/repo/target/debug/deps/server_props-12aa54bc6f84b941: crates/simkit/tests/server_props.rs

crates/simkit/tests/server_props.rs:
