/root/repo/target/debug/deps/hwmodel-b2bc561f7f59d1cb.d: crates/hwmodel/src/lib.rs crates/hwmodel/src/consts.rs crates/hwmodel/src/engine.rs crates/hwmodel/src/fpga.rs crates/hwmodel/src/mem.rs crates/hwmodel/src/mlc.rs crates/hwmodel/src/nic.rs crates/hwmodel/src/pcie.rs crates/hwmodel/src/soc.rs crates/hwmodel/src/tco.rs

/root/repo/target/debug/deps/libhwmodel-b2bc561f7f59d1cb.rlib: crates/hwmodel/src/lib.rs crates/hwmodel/src/consts.rs crates/hwmodel/src/engine.rs crates/hwmodel/src/fpga.rs crates/hwmodel/src/mem.rs crates/hwmodel/src/mlc.rs crates/hwmodel/src/nic.rs crates/hwmodel/src/pcie.rs crates/hwmodel/src/soc.rs crates/hwmodel/src/tco.rs

/root/repo/target/debug/deps/libhwmodel-b2bc561f7f59d1cb.rmeta: crates/hwmodel/src/lib.rs crates/hwmodel/src/consts.rs crates/hwmodel/src/engine.rs crates/hwmodel/src/fpga.rs crates/hwmodel/src/mem.rs crates/hwmodel/src/mlc.rs crates/hwmodel/src/nic.rs crates/hwmodel/src/pcie.rs crates/hwmodel/src/soc.rs crates/hwmodel/src/tco.rs

crates/hwmodel/src/lib.rs:
crates/hwmodel/src/consts.rs:
crates/hwmodel/src/engine.rs:
crates/hwmodel/src/fpga.rs:
crates/hwmodel/src/mem.rs:
crates/hwmodel/src/mlc.rs:
crates/hwmodel/src/nic.rs:
crates/hwmodel/src/pcie.rs:
crates/hwmodel/src/soc.rs:
crates/hwmodel/src/tco.rs:
