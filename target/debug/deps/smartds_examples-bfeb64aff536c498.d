/root/repo/target/debug/deps/smartds_examples-bfeb64aff536c498.d: examples/lib.rs

/root/repo/target/debug/deps/libsmartds_examples-bfeb64aff536c498.rlib: examples/lib.rs

/root/repo/target/debug/deps/libsmartds_examples-bfeb64aff536c498.rmeta: examples/lib.rs

examples/lib.rs:
