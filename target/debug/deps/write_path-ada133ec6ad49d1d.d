/root/repo/target/debug/deps/write_path-ada133ec6ad49d1d.d: tests/tests/write_path.rs

/root/repo/target/debug/deps/write_path-ada133ec6ad49d1d: tests/tests/write_path.rs

tests/tests/write_path.rs:
