/root/repo/target/debug/deps/hwmodel-b071b4b5d156e78c.d: crates/hwmodel/src/lib.rs crates/hwmodel/src/consts.rs crates/hwmodel/src/engine.rs crates/hwmodel/src/fpga.rs crates/hwmodel/src/mem.rs crates/hwmodel/src/mlc.rs crates/hwmodel/src/nic.rs crates/hwmodel/src/pcie.rs crates/hwmodel/src/soc.rs crates/hwmodel/src/tco.rs

/root/repo/target/debug/deps/hwmodel-b071b4b5d156e78c: crates/hwmodel/src/lib.rs crates/hwmodel/src/consts.rs crates/hwmodel/src/engine.rs crates/hwmodel/src/fpga.rs crates/hwmodel/src/mem.rs crates/hwmodel/src/mlc.rs crates/hwmodel/src/nic.rs crates/hwmodel/src/pcie.rs crates/hwmodel/src/soc.rs crates/hwmodel/src/tco.rs

crates/hwmodel/src/lib.rs:
crates/hwmodel/src/consts.rs:
crates/hwmodel/src/engine.rs:
crates/hwmodel/src/fpga.rs:
crates/hwmodel/src/mem.rs:
crates/hwmodel/src/mlc.rs:
crates/hwmodel/src/nic.rs:
crates/hwmodel/src/pcie.rs:
crates/hwmodel/src/soc.rs:
crates/hwmodel/src/tco.rs:
