/root/repo/target/debug/deps/interference-9f6de3dea751d799.d: examples/interference.rs

/root/repo/target/debug/deps/interference-9f6de3dea751d799: examples/interference.rs

examples/interference.rs:
