/root/repo/target/debug/deps/cold_archive-e0a047f09405508f.d: examples/cold_archive.rs

/root/repo/target/debug/deps/cold_archive-e0a047f09405508f: examples/cold_archive.rs

examples/cold_archive.rs:
