/root/repo/target/debug/deps/tenants-ea5905e33b1de93c.d: examples/tenants.rs

/root/repo/target/debug/deps/tenants-ea5905e33b1de93c: examples/tenants.rs

examples/tenants.rs:
