/root/repo/target/debug/deps/ablation_mem_agent-dca7f0c1f7242b77.d: crates/bench/benches/ablation_mem_agent.rs

/root/repo/target/debug/deps/ablation_mem_agent-dca7f0c1f7242b77: crates/bench/benches/ablation_mem_agent.rs

crates/bench/benches/ablation_mem_agent.rs:
