/root/repo/target/debug/deps/rocenet-e58b8bf3656832bc.d: crates/rocenet/src/lib.rs crates/rocenet/src/aams.rs crates/rocenet/src/endpoint.rs crates/rocenet/src/mem.rs crates/rocenet/src/message.rs crates/rocenet/src/qp.rs crates/rocenet/src/rc.rs crates/rocenet/src/verbs.rs

/root/repo/target/debug/deps/librocenet-e58b8bf3656832bc.rlib: crates/rocenet/src/lib.rs crates/rocenet/src/aams.rs crates/rocenet/src/endpoint.rs crates/rocenet/src/mem.rs crates/rocenet/src/message.rs crates/rocenet/src/qp.rs crates/rocenet/src/rc.rs crates/rocenet/src/verbs.rs

/root/repo/target/debug/deps/librocenet-e58b8bf3656832bc.rmeta: crates/rocenet/src/lib.rs crates/rocenet/src/aams.rs crates/rocenet/src/endpoint.rs crates/rocenet/src/mem.rs crates/rocenet/src/message.rs crates/rocenet/src/qp.rs crates/rocenet/src/rc.rs crates/rocenet/src/verbs.rs

crates/rocenet/src/lib.rs:
crates/rocenet/src/aams.rs:
crates/rocenet/src/endpoint.rs:
crates/rocenet/src/mem.rs:
crates/rocenet/src/message.rs:
crates/rocenet/src/qp.rs:
crates/rocenet/src/rc.rs:
crates/rocenet/src/verbs.rs:
