/root/repo/target/debug/deps/table1_pcie_latency-a2f5a000ae432e63.d: crates/bench/benches/table1_pcie_latency.rs

/root/repo/target/debug/deps/table1_pcie_latency-a2f5a000ae432e63: crates/bench/benches/table1_pcie_latency.rs

crates/bench/benches/table1_pcie_latency.rs:
