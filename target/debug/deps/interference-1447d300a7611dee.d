/root/repo/target/debug/deps/interference-1447d300a7611dee.d: examples/interference.rs

/root/repo/target/debug/deps/interference-1447d300a7611dee: examples/interference.rs

examples/interference.rs:
