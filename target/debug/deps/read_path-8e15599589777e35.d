/root/repo/target/debug/deps/read_path-8e15599589777e35.d: examples/read_path.rs

/root/repo/target/debug/deps/read_path-8e15599589777e35: examples/read_path.rs

examples/read_path.rs:
