/root/repo/target/debug/deps/wire_to_store-0164a5b100c9497e.d: tests/tests/wire_to_store.rs

/root/repo/target/debug/deps/wire_to_store-0164a5b100c9497e: tests/tests/wire_to_store.rs

tests/tests/wire_to_store.rs:
