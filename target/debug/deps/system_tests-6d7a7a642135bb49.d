/root/repo/target/debug/deps/system_tests-6d7a7a642135bb49.d: tests/lib.rs

/root/repo/target/debug/deps/libsystem_tests-6d7a7a642135bb49.rlib: tests/lib.rs

/root/repo/target/debug/deps/libsystem_tests-6d7a7a642135bb49.rmeta: tests/lib.rs

tests/lib.rs:
