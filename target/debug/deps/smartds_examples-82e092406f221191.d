/root/repo/target/debug/deps/smartds_examples-82e092406f221191.d: examples/lib.rs

/root/repo/target/debug/deps/smartds_examples-82e092406f221191: examples/lib.rs

examples/lib.rs:
