/root/repo/target/debug/deps/cpu_baseline-3bfbccfc729e49b4.d: examples/cpu_baseline.rs

/root/repo/target/debug/deps/cpu_baseline-3bfbccfc729e49b4: examples/cpu_baseline.rs

examples/cpu_baseline.rs:
