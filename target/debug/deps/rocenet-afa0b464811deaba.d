/root/repo/target/debug/deps/rocenet-afa0b464811deaba.d: crates/rocenet/src/lib.rs crates/rocenet/src/aams.rs crates/rocenet/src/endpoint.rs crates/rocenet/src/mem.rs crates/rocenet/src/message.rs crates/rocenet/src/qp.rs crates/rocenet/src/rc.rs crates/rocenet/src/verbs.rs

/root/repo/target/debug/deps/rocenet-afa0b464811deaba: crates/rocenet/src/lib.rs crates/rocenet/src/aams.rs crates/rocenet/src/endpoint.rs crates/rocenet/src/mem.rs crates/rocenet/src/message.rs crates/rocenet/src/qp.rs crates/rocenet/src/rc.rs crates/rocenet/src/verbs.rs

crates/rocenet/src/lib.rs:
crates/rocenet/src/aams.rs:
crates/rocenet/src/endpoint.rs:
crates/rocenet/src/mem.rs:
crates/rocenet/src/message.rs:
crates/rocenet/src/qp.rs:
crates/rocenet/src/rc.rs:
crates/rocenet/src/verbs.rs:
