/root/repo/target/debug/deps/simkit-b1ad664411202928.d: crates/simkit/src/lib.rs crates/simkit/src/bytes.rs crates/simkit/src/engine.rs crates/simkit/src/fluid.rs crates/simkit/src/hist.rs crates/simkit/src/json.rs crates/simkit/src/meter.rs crates/simkit/src/rng.rs crates/simkit/src/server.rs crates/simkit/src/time.rs

/root/repo/target/debug/deps/libsimkit-b1ad664411202928.rlib: crates/simkit/src/lib.rs crates/simkit/src/bytes.rs crates/simkit/src/engine.rs crates/simkit/src/fluid.rs crates/simkit/src/hist.rs crates/simkit/src/json.rs crates/simkit/src/meter.rs crates/simkit/src/rng.rs crates/simkit/src/server.rs crates/simkit/src/time.rs

/root/repo/target/debug/deps/libsimkit-b1ad664411202928.rmeta: crates/simkit/src/lib.rs crates/simkit/src/bytes.rs crates/simkit/src/engine.rs crates/simkit/src/fluid.rs crates/simkit/src/hist.rs crates/simkit/src/json.rs crates/simkit/src/meter.rs crates/simkit/src/rng.rs crates/simkit/src/server.rs crates/simkit/src/time.rs

crates/simkit/src/lib.rs:
crates/simkit/src/bytes.rs:
crates/simkit/src/engine.rs:
crates/simkit/src/fluid.rs:
crates/simkit/src/hist.rs:
crates/simkit/src/json.rs:
crates/simkit/src/meter.rs:
crates/simkit/src/rng.rs:
crates/simkit/src/server.rs:
crates/simkit/src/time.rs:
