/root/repo/target/debug/deps/experiments-9612971fd08c1a62.d: crates/bench/src/bin/experiments.rs

/root/repo/target/debug/deps/experiments-9612971fd08c1a62: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
