/root/repo/target/debug/deps/ablation_split_granularity-d3841bbd8e1fdc33.d: crates/bench/benches/ablation_split_granularity.rs

/root/repo/target/debug/deps/ablation_split_granularity-d3841bbd8e1fdc33: crates/bench/benches/ablation_split_granularity.rs

crates/bench/benches/ablation_split_granularity.rs:
