/root/repo/target/debug/deps/rc_props-cb5e303b662dfa51.d: crates/rocenet/tests/rc_props.rs

/root/repo/target/debug/deps/rc_props-cb5e303b662dfa51: crates/rocenet/tests/rc_props.rs

crates/rocenet/tests/rc_props.rs:
