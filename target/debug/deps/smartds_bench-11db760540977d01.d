/root/repo/target/debug/deps/smartds_bench-11db760540977d01.d: crates/bench/src/lib.rs crates/bench/src/csv.rs crates/bench/src/curve.rs crates/bench/src/fig4.rs crates/bench/src/json.rs crates/bench/src/loc.rs crates/bench/src/pool.rs crates/bench/src/reads.rs crates/bench/src/sec55.rs crates/bench/src/soc.rs crates/bench/src/stages.rs crates/bench/src/sweeps.rs crates/bench/src/table1.rs crates/bench/src/table3.rs crates/bench/src/tco.rs

/root/repo/target/debug/deps/libsmartds_bench-11db760540977d01.rlib: crates/bench/src/lib.rs crates/bench/src/csv.rs crates/bench/src/curve.rs crates/bench/src/fig4.rs crates/bench/src/json.rs crates/bench/src/loc.rs crates/bench/src/pool.rs crates/bench/src/reads.rs crates/bench/src/sec55.rs crates/bench/src/soc.rs crates/bench/src/stages.rs crates/bench/src/sweeps.rs crates/bench/src/table1.rs crates/bench/src/table3.rs crates/bench/src/tco.rs

/root/repo/target/debug/deps/libsmartds_bench-11db760540977d01.rmeta: crates/bench/src/lib.rs crates/bench/src/csv.rs crates/bench/src/curve.rs crates/bench/src/fig4.rs crates/bench/src/json.rs crates/bench/src/loc.rs crates/bench/src/pool.rs crates/bench/src/reads.rs crates/bench/src/sec55.rs crates/bench/src/soc.rs crates/bench/src/stages.rs crates/bench/src/sweeps.rs crates/bench/src/table1.rs crates/bench/src/table3.rs crates/bench/src/tco.rs

crates/bench/src/lib.rs:
crates/bench/src/csv.rs:
crates/bench/src/curve.rs:
crates/bench/src/fig4.rs:
crates/bench/src/json.rs:
crates/bench/src/loc.rs:
crates/bench/src/pool.rs:
crates/bench/src/reads.rs:
crates/bench/src/sec55.rs:
crates/bench/src/soc.rs:
crates/bench/src/stages.rs:
crates/bench/src/sweeps.rs:
crates/bench/src/table1.rs:
crates/bench/src/table3.rs:
crates/bench/src/tco.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
