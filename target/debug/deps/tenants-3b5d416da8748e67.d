/root/repo/target/debug/deps/tenants-3b5d416da8748e67.d: examples/tenants.rs

/root/repo/target/debug/deps/tenants-3b5d416da8748e67: examples/tenants.rs

examples/tenants.rs:
