/root/repo/target/debug/deps/quickstart-3b1761084be8586a.d: examples/quickstart.rs

/root/repo/target/debug/deps/quickstart-3b1761084be8586a: examples/quickstart.rs

examples/quickstart.rs:
