/root/repo/target/debug/deps/virtual_disk-4fb45efdb4d61b41.d: examples/virtual_disk.rs

/root/repo/target/debug/deps/virtual_disk-4fb45efdb4d61b41: examples/virtual_disk.rs

examples/virtual_disk.rs:
