/root/repo/target/debug/deps/fig10_ports-9692a67803f1f951.d: crates/bench/benches/fig10_ports.rs

/root/repo/target/debug/deps/fig10_ports-9692a67803f1f951: crates/bench/benches/fig10_ports.rs

crates/bench/benches/fig10_ports.rs:
