/root/repo/target/debug/deps/provision-fc4174680294c4fe.d: examples/provision.rs

/root/repo/target/debug/deps/provision-fc4174680294c4fe: examples/provision.rs

examples/provision.rs:
