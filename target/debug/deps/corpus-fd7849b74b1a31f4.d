/root/repo/target/debug/deps/corpus-fd7849b74b1a31f4.d: crates/corpus/src/lib.rs crates/corpus/src/gen.rs crates/corpus/src/profile.rs crates/corpus/src/silesia.rs

/root/repo/target/debug/deps/corpus-fd7849b74b1a31f4: crates/corpus/src/lib.rs crates/corpus/src/gen.rs crates/corpus/src/profile.rs crates/corpus/src/silesia.rs

crates/corpus/src/lib.rs:
crates/corpus/src/gen.rs:
crates/corpus/src/profile.rs:
crates/corpus/src/silesia.rs:
