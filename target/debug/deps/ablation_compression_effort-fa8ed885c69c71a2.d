/root/repo/target/debug/deps/ablation_compression_effort-fa8ed885c69c71a2.d: crates/bench/benches/ablation_compression_effort.rs

/root/repo/target/debug/deps/ablation_compression_effort-fa8ed885c69c71a2: crates/bench/benches/ablation_compression_effort.rs

crates/bench/benches/ablation_compression_effort.rs:
