/root/repo/target/debug/deps/ablation_replication-2a831338ba43e453.d: crates/bench/benches/ablation_replication.rs

/root/repo/target/debug/deps/ablation_replication-2a831338ba43e453: crates/bench/benches/ablation_replication.rs

crates/bench/benches/ablation_replication.rs:
