/root/repo/target/debug/deps/fig9_interference-704e19860281042e.d: crates/bench/benches/fig9_interference.rs

/root/repo/target/debug/deps/fig9_interference-704e19860281042e: crates/bench/benches/fig9_interference.rs

crates/bench/benches/fig9_interference.rs:
