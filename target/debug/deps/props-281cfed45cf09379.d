/root/repo/target/debug/deps/props-281cfed45cf09379.d: crates/blockstore/tests/props.rs

/root/repo/target/debug/deps/props-281cfed45cf09379: crates/blockstore/tests/props.rs

crates/blockstore/tests/props.rs:
