/root/repo/target/debug/deps/smartds-97e2f60f130b8310.d: crates/core/src/lib.rs crates/core/src/agent.rs crates/core/src/api.rs crates/core/src/cluster.rs crates/core/src/design.rs crates/core/src/fabric.rs crates/core/src/metrics.rs crates/core/src/plan.rs crates/core/src/policy.rs crates/core/src/qos.rs crates/core/src/scaleup.rs crates/core/src/workload.rs

/root/repo/target/debug/deps/smartds-97e2f60f130b8310: crates/core/src/lib.rs crates/core/src/agent.rs crates/core/src/api.rs crates/core/src/cluster.rs crates/core/src/design.rs crates/core/src/fabric.rs crates/core/src/metrics.rs crates/core/src/plan.rs crates/core/src/policy.rs crates/core/src/qos.rs crates/core/src/scaleup.rs crates/core/src/workload.rs

crates/core/src/lib.rs:
crates/core/src/agent.rs:
crates/core/src/api.rs:
crates/core/src/cluster.rs:
crates/core/src/design.rs:
crates/core/src/fabric.rs:
crates/core/src/metrics.rs:
crates/core/src/plan.rs:
crates/core/src/policy.rs:
crates/core/src/qos.rs:
crates/core/src/scaleup.rs:
crates/core/src/workload.rs:
