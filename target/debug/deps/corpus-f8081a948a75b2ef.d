/root/repo/target/debug/deps/corpus-f8081a948a75b2ef.d: crates/corpus/src/lib.rs crates/corpus/src/gen.rs crates/corpus/src/profile.rs crates/corpus/src/silesia.rs

/root/repo/target/debug/deps/libcorpus-f8081a948a75b2ef.rlib: crates/corpus/src/lib.rs crates/corpus/src/gen.rs crates/corpus/src/profile.rs crates/corpus/src/silesia.rs

/root/repo/target/debug/deps/libcorpus-f8081a948a75b2ef.rmeta: crates/corpus/src/lib.rs crates/corpus/src/gen.rs crates/corpus/src/profile.rs crates/corpus/src/silesia.rs

crates/corpus/src/lib.rs:
crates/corpus/src/gen.rs:
crates/corpus/src/profile.rs:
crates/corpus/src/silesia.rs:
