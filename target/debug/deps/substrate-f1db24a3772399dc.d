/root/repo/target/debug/deps/substrate-f1db24a3772399dc.d: tests/tests/substrate.rs

/root/repo/target/debug/deps/substrate-f1db24a3772399dc: tests/tests/substrate.rs

tests/tests/substrate.rs:
