/root/repo/target/debug/deps/determinism-1b0ad75f885a17b7.d: tests/tests/determinism.rs

/root/repo/target/debug/deps/determinism-1b0ad75f885a17b7: tests/tests/determinism.rs

tests/tests/determinism.rs:
