/root/repo/target/debug/deps/aams_props-4536befd70165146.d: crates/rocenet/tests/aams_props.rs

/root/repo/target/debug/deps/aams_props-4536befd70165146: crates/rocenet/tests/aams_props.rs

crates/rocenet/tests/aams_props.rs:
