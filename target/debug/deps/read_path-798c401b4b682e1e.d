/root/repo/target/debug/deps/read_path-798c401b4b682e1e.d: examples/read_path.rs

/root/repo/target/debug/deps/read_path-798c401b4b682e1e: examples/read_path.rs

examples/read_path.rs:
