/root/repo/target/debug/deps/failover-f1e998e63380f16a.d: tests/tests/failover.rs

/root/repo/target/debug/deps/failover-f1e998e63380f16a: tests/tests/failover.rs

tests/tests/failover.rs:
