/root/repo/target/debug/deps/lz4kit-284e49f198a4e85d.d: crates/lz4kit/src/lib.rs crates/lz4kit/src/compress.rs crates/lz4kit/src/decompress.rs crates/lz4kit/src/error.rs crates/lz4kit/src/frame.rs crates/lz4kit/src/xxhash.rs

/root/repo/target/debug/deps/liblz4kit-284e49f198a4e85d.rlib: crates/lz4kit/src/lib.rs crates/lz4kit/src/compress.rs crates/lz4kit/src/decompress.rs crates/lz4kit/src/error.rs crates/lz4kit/src/frame.rs crates/lz4kit/src/xxhash.rs

/root/repo/target/debug/deps/liblz4kit-284e49f198a4e85d.rmeta: crates/lz4kit/src/lib.rs crates/lz4kit/src/compress.rs crates/lz4kit/src/decompress.rs crates/lz4kit/src/error.rs crates/lz4kit/src/frame.rs crates/lz4kit/src/xxhash.rs

crates/lz4kit/src/lib.rs:
crates/lz4kit/src/compress.rs:
crates/lz4kit/src/decompress.rs:
crates/lz4kit/src/error.rs:
crates/lz4kit/src/frame.rs:
crates/lz4kit/src/xxhash.rs:
