/root/repo/target/debug/deps/fig4_mem_pressure-f3d07d1675d272d7.d: crates/bench/benches/fig4_mem_pressure.rs

/root/repo/target/debug/deps/fig4_mem_pressure-f3d07d1675d272d7: crates/bench/benches/fig4_mem_pressure.rs

crates/bench/benches/fig4_mem_pressure.rs:
