/root/repo/target/debug/libsystem_tests.rlib: /root/repo/tests/lib.rs
