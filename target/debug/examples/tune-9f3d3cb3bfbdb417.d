/root/repo/target/debug/examples/tune-9f3d3cb3bfbdb417.d: crates/corpus/examples/tune.rs

/root/repo/target/debug/examples/tune-9f3d3cb3bfbdb417: crates/corpus/examples/tune.rs

crates/corpus/examples/tune.rs:
