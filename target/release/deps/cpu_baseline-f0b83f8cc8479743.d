/root/repo/target/release/deps/cpu_baseline-f0b83f8cc8479743.d: examples/cpu_baseline.rs

/root/repo/target/release/deps/cpu_baseline-f0b83f8cc8479743: examples/cpu_baseline.rs

examples/cpu_baseline.rs:
