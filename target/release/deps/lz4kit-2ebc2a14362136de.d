/root/repo/target/release/deps/lz4kit-2ebc2a14362136de.d: crates/lz4kit/src/lib.rs crates/lz4kit/src/compress.rs crates/lz4kit/src/decompress.rs crates/lz4kit/src/error.rs crates/lz4kit/src/frame.rs crates/lz4kit/src/xxhash.rs

/root/repo/target/release/deps/liblz4kit-2ebc2a14362136de.rlib: crates/lz4kit/src/lib.rs crates/lz4kit/src/compress.rs crates/lz4kit/src/decompress.rs crates/lz4kit/src/error.rs crates/lz4kit/src/frame.rs crates/lz4kit/src/xxhash.rs

/root/repo/target/release/deps/liblz4kit-2ebc2a14362136de.rmeta: crates/lz4kit/src/lib.rs crates/lz4kit/src/compress.rs crates/lz4kit/src/decompress.rs crates/lz4kit/src/error.rs crates/lz4kit/src/frame.rs crates/lz4kit/src/xxhash.rs

crates/lz4kit/src/lib.rs:
crates/lz4kit/src/compress.rs:
crates/lz4kit/src/decompress.rs:
crates/lz4kit/src/error.rs:
crates/lz4kit/src/frame.rs:
crates/lz4kit/src/xxhash.rs:
