/root/repo/target/release/deps/rocenet-fb69666906619033.d: crates/rocenet/src/lib.rs crates/rocenet/src/aams.rs crates/rocenet/src/endpoint.rs crates/rocenet/src/mem.rs crates/rocenet/src/message.rs crates/rocenet/src/qp.rs crates/rocenet/src/rc.rs crates/rocenet/src/verbs.rs

/root/repo/target/release/deps/librocenet-fb69666906619033.rlib: crates/rocenet/src/lib.rs crates/rocenet/src/aams.rs crates/rocenet/src/endpoint.rs crates/rocenet/src/mem.rs crates/rocenet/src/message.rs crates/rocenet/src/qp.rs crates/rocenet/src/rc.rs crates/rocenet/src/verbs.rs

/root/repo/target/release/deps/librocenet-fb69666906619033.rmeta: crates/rocenet/src/lib.rs crates/rocenet/src/aams.rs crates/rocenet/src/endpoint.rs crates/rocenet/src/mem.rs crates/rocenet/src/message.rs crates/rocenet/src/qp.rs crates/rocenet/src/rc.rs crates/rocenet/src/verbs.rs

crates/rocenet/src/lib.rs:
crates/rocenet/src/aams.rs:
crates/rocenet/src/endpoint.rs:
crates/rocenet/src/mem.rs:
crates/rocenet/src/message.rs:
crates/rocenet/src/qp.rs:
crates/rocenet/src/rc.rs:
crates/rocenet/src/verbs.rs:
