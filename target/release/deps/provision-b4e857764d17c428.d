/root/repo/target/release/deps/provision-b4e857764d17c428.d: examples/provision.rs

/root/repo/target/release/deps/provision-b4e857764d17c428: examples/provision.rs

examples/provision.rs:
