/root/repo/target/release/deps/read_path-e2107530b549a9ad.d: examples/read_path.rs

/root/repo/target/release/deps/read_path-e2107530b549a9ad: examples/read_path.rs

examples/read_path.rs:
