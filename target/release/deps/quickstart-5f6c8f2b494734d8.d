/root/repo/target/release/deps/quickstart-5f6c8f2b494734d8.d: examples/quickstart.rs

/root/repo/target/release/deps/quickstart-5f6c8f2b494734d8: examples/quickstart.rs

examples/quickstart.rs:
