/root/repo/target/release/deps/blockstore-48bf19ac74897db2.d: crates/blockstore/src/lib.rs crates/blockstore/src/chunk.rs crates/blockstore/src/header.rs crates/blockstore/src/mapping.rs crates/blockstore/src/replica.rs crates/blockstore/src/scrub.rs crates/blockstore/src/server.rs

/root/repo/target/release/deps/libblockstore-48bf19ac74897db2.rlib: crates/blockstore/src/lib.rs crates/blockstore/src/chunk.rs crates/blockstore/src/header.rs crates/blockstore/src/mapping.rs crates/blockstore/src/replica.rs crates/blockstore/src/scrub.rs crates/blockstore/src/server.rs

/root/repo/target/release/deps/libblockstore-48bf19ac74897db2.rmeta: crates/blockstore/src/lib.rs crates/blockstore/src/chunk.rs crates/blockstore/src/header.rs crates/blockstore/src/mapping.rs crates/blockstore/src/replica.rs crates/blockstore/src/scrub.rs crates/blockstore/src/server.rs

crates/blockstore/src/lib.rs:
crates/blockstore/src/chunk.rs:
crates/blockstore/src/header.rs:
crates/blockstore/src/mapping.rs:
crates/blockstore/src/replica.rs:
crates/blockstore/src/scrub.rs:
crates/blockstore/src/server.rs:
