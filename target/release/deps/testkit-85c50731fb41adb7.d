/root/repo/target/release/deps/testkit-85c50731fb41adb7.d: crates/testkit/src/lib.rs crates/testkit/src/bench.rs crates/testkit/src/gen.rs crates/testkit/src/runner.rs crates/testkit/src/shrink.rs crates/testkit/src/source.rs

/root/repo/target/release/deps/libtestkit-85c50731fb41adb7.rlib: crates/testkit/src/lib.rs crates/testkit/src/bench.rs crates/testkit/src/gen.rs crates/testkit/src/runner.rs crates/testkit/src/shrink.rs crates/testkit/src/source.rs

/root/repo/target/release/deps/libtestkit-85c50731fb41adb7.rmeta: crates/testkit/src/lib.rs crates/testkit/src/bench.rs crates/testkit/src/gen.rs crates/testkit/src/runner.rs crates/testkit/src/shrink.rs crates/testkit/src/source.rs

crates/testkit/src/lib.rs:
crates/testkit/src/bench.rs:
crates/testkit/src/gen.rs:
crates/testkit/src/runner.rs:
crates/testkit/src/shrink.rs:
crates/testkit/src/source.rs:
