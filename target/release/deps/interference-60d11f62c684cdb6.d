/root/repo/target/release/deps/interference-60d11f62c684cdb6.d: examples/interference.rs

/root/repo/target/release/deps/interference-60d11f62c684cdb6: examples/interference.rs

examples/interference.rs:
