/root/repo/target/release/deps/tenants-e18b3f5c5c7a0ca2.d: examples/tenants.rs

/root/repo/target/release/deps/tenants-e18b3f5c5c7a0ca2: examples/tenants.rs

examples/tenants.rs:
