/root/repo/target/release/deps/smartds_examples-c1ac23a14c546852.d: examples/lib.rs

/root/repo/target/release/deps/libsmartds_examples-c1ac23a14c546852.rlib: examples/lib.rs

/root/repo/target/release/deps/libsmartds_examples-c1ac23a14c546852.rmeta: examples/lib.rs

examples/lib.rs:
