/root/repo/target/release/deps/hwmodel-263c1774669f8e41.d: crates/hwmodel/src/lib.rs crates/hwmodel/src/consts.rs crates/hwmodel/src/engine.rs crates/hwmodel/src/fpga.rs crates/hwmodel/src/mem.rs crates/hwmodel/src/mlc.rs crates/hwmodel/src/nic.rs crates/hwmodel/src/pcie.rs crates/hwmodel/src/soc.rs crates/hwmodel/src/tco.rs

/root/repo/target/release/deps/libhwmodel-263c1774669f8e41.rlib: crates/hwmodel/src/lib.rs crates/hwmodel/src/consts.rs crates/hwmodel/src/engine.rs crates/hwmodel/src/fpga.rs crates/hwmodel/src/mem.rs crates/hwmodel/src/mlc.rs crates/hwmodel/src/nic.rs crates/hwmodel/src/pcie.rs crates/hwmodel/src/soc.rs crates/hwmodel/src/tco.rs

/root/repo/target/release/deps/libhwmodel-263c1774669f8e41.rmeta: crates/hwmodel/src/lib.rs crates/hwmodel/src/consts.rs crates/hwmodel/src/engine.rs crates/hwmodel/src/fpga.rs crates/hwmodel/src/mem.rs crates/hwmodel/src/mlc.rs crates/hwmodel/src/nic.rs crates/hwmodel/src/pcie.rs crates/hwmodel/src/soc.rs crates/hwmodel/src/tco.rs

crates/hwmodel/src/lib.rs:
crates/hwmodel/src/consts.rs:
crates/hwmodel/src/engine.rs:
crates/hwmodel/src/fpga.rs:
crates/hwmodel/src/mem.rs:
crates/hwmodel/src/mlc.rs:
crates/hwmodel/src/nic.rs:
crates/hwmodel/src/pcie.rs:
crates/hwmodel/src/soc.rs:
crates/hwmodel/src/tco.rs:
