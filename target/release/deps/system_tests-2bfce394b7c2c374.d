/root/repo/target/release/deps/system_tests-2bfce394b7c2c374.d: tests/lib.rs

/root/repo/target/release/deps/libsystem_tests-2bfce394b7c2c374.rlib: tests/lib.rs

/root/repo/target/release/deps/libsystem_tests-2bfce394b7c2c374.rmeta: tests/lib.rs

tests/lib.rs:
