/root/repo/target/release/deps/lz4_codec-72a29b99d5d20427.d: crates/bench/benches/lz4_codec.rs

/root/repo/target/release/deps/lz4_codec-72a29b99d5d20427: crates/bench/benches/lz4_codec.rs

crates/bench/benches/lz4_codec.rs:
