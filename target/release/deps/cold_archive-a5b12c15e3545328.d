/root/repo/target/release/deps/cold_archive-a5b12c15e3545328.d: examples/cold_archive.rs

/root/repo/target/release/deps/cold_archive-a5b12c15e3545328: examples/cold_archive.rs

examples/cold_archive.rs:
