/root/repo/target/release/deps/simkit-102b26fa953aed5f.d: crates/simkit/src/lib.rs crates/simkit/src/bytes.rs crates/simkit/src/engine.rs crates/simkit/src/fluid.rs crates/simkit/src/hist.rs crates/simkit/src/json.rs crates/simkit/src/meter.rs crates/simkit/src/rng.rs crates/simkit/src/server.rs crates/simkit/src/time.rs

/root/repo/target/release/deps/libsimkit-102b26fa953aed5f.rlib: crates/simkit/src/lib.rs crates/simkit/src/bytes.rs crates/simkit/src/engine.rs crates/simkit/src/fluid.rs crates/simkit/src/hist.rs crates/simkit/src/json.rs crates/simkit/src/meter.rs crates/simkit/src/rng.rs crates/simkit/src/server.rs crates/simkit/src/time.rs

/root/repo/target/release/deps/libsimkit-102b26fa953aed5f.rmeta: crates/simkit/src/lib.rs crates/simkit/src/bytes.rs crates/simkit/src/engine.rs crates/simkit/src/fluid.rs crates/simkit/src/hist.rs crates/simkit/src/json.rs crates/simkit/src/meter.rs crates/simkit/src/rng.rs crates/simkit/src/server.rs crates/simkit/src/time.rs

crates/simkit/src/lib.rs:
crates/simkit/src/bytes.rs:
crates/simkit/src/engine.rs:
crates/simkit/src/fluid.rs:
crates/simkit/src/hist.rs:
crates/simkit/src/json.rs:
crates/simkit/src/meter.rs:
crates/simkit/src/rng.rs:
crates/simkit/src/server.rs:
crates/simkit/src/time.rs:
