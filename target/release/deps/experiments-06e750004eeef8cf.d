/root/repo/target/release/deps/experiments-06e750004eeef8cf.d: crates/bench/src/bin/experiments.rs

/root/repo/target/release/deps/experiments-06e750004eeef8cf: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
