/root/repo/target/release/deps/virtual_disk-4f169e5a3be0958a.d: examples/virtual_disk.rs

/root/repo/target/release/deps/virtual_disk-4f169e5a3be0958a: examples/virtual_disk.rs

examples/virtual_disk.rs:
