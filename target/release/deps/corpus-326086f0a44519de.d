/root/repo/target/release/deps/corpus-326086f0a44519de.d: crates/corpus/src/lib.rs crates/corpus/src/gen.rs crates/corpus/src/profile.rs crates/corpus/src/silesia.rs

/root/repo/target/release/deps/libcorpus-326086f0a44519de.rlib: crates/corpus/src/lib.rs crates/corpus/src/gen.rs crates/corpus/src/profile.rs crates/corpus/src/silesia.rs

/root/repo/target/release/deps/libcorpus-326086f0a44519de.rmeta: crates/corpus/src/lib.rs crates/corpus/src/gen.rs crates/corpus/src/profile.rs crates/corpus/src/silesia.rs

crates/corpus/src/lib.rs:
crates/corpus/src/gen.rs:
crates/corpus/src/profile.rs:
crates/corpus/src/silesia.rs:
