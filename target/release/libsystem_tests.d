/root/repo/target/release/libsystem_tests.rlib: /root/repo/tests/lib.rs
